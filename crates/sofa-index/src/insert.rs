//! Incremental insertion — the iSAX-2.0-style online path of the index
//! family.
//!
//! MESSI (and SOFA) are described as batch-built indexes, but every member
//! of the iSAX family also supports online insertion: append the series,
//! compute its word, descend the home subtree to a leaf, and when the leaf
//! exceeds its capacity split it by increasing the cardinality of the
//! position whose next bit divides the leaf's rows most evenly (paper
//! §IV-B: "when the number of series in a leaf node exceeds its capacity,
//! the leaf splits into two new leaves, becoming an inner node"). This
//! module implements that path so the index stays usable for workloads
//! that trickle in after the initial bulk build.
//!
//! Inserts keep every exactness invariant: the new row's word respects its
//! leaf's prefix (checked by tests), so queries started after an insert
//! see the new series.

use crate::node::{root_key, Node, NodeKind, Subtree};
use crate::{Index, IndexError};
use sofa_summaries::Summarization;

impl<S: Summarization> Index<S> {
    /// Inserts one series, returning its row id.
    ///
    /// The series is z-normalized and summarized with the index's learned
    /// model. Note that an SFA model learned at build time is *not*
    /// re-learned — the paper's batch protocol; drifting data would call
    /// for a rebuild.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] if the series length mismatches.
    pub fn insert(&mut self, series: &[f32]) -> Result<u32, IndexError> {
        let row = self.insert_without_repack(series)?;
        self.maybe_auto_repack();
        Ok(row)
    }

    /// The insert body, without the auto-repack check —
    /// [`Index::insert_all`] defers that to the end of the burst so a
    /// batch of inserts never pays more than one repack.
    fn insert_without_repack(&mut self, series: &[f32]) -> Result<u32, IndexError> {
        if series.len() != self.series_len {
            return Err(IndexError::BadQuery(format!(
                "series length {} != index series length {}",
                series.len(),
                self.series_len
            )));
        }
        let next_row = self.data.len() / self.series_len;
        if next_row > u32::MAX as usize {
            // Row ids and storage slots are `u32`; one more row would
            // silently truncate every cast downstream.
            return Err(IndexError::TooManyRows { rows: next_row + 1 });
        }
        // Append normalized values and the word. The new row takes the
        // next storage slot (the arena tail), so existing packed runs are
        // undisturbed; only the leaf receiving the row loses its pack.
        let mut z = series.to_vec();
        sofa_simd::znormalize(&mut z);
        let mut word = vec![0u8; self.word_len];
        self.summarization.transformer().word_into(&z, &mut word);
        // Lossless: `next_row <= u32::MAX` was checked above.
        let row = next_row as u32;
        // Appends promote mapped (snapshot-opened) arenas to owned copies
        // (whole-arena copy-on-write, paid once per opened index).
        self.data.make_mut().extend_from_slice(&z);
        self.words.make_mut().extend_from_slice(&word);
        self.row_to_slot.push(row);
        self.slot_to_row.push(row);

        let symbol_bits = self.summarization.symbol_bits();
        let key = root_key(&word, symbol_bits);
        let subtree_idx = match self.subtrees.binary_search_by_key(&key, |s| s.key) {
            Ok(i) => i,
            Err(i) => {
                // New root child: a fresh subtree holding one leaf. No
                // collect block: single-node subtrees are priced by the
                // RootLbd gate alone (their leaf's 1-bit label *is* the
                // key), and `repack_leaves` attaches a block if splits
                // ever grow the subtree.
                let prefixes: Vec<u8> =
                    (0..self.word_len).map(|j| ((key >> j) & 1) as u8).collect();
                let bits = vec![1u8; self.word_len];
                let subtree = Subtree {
                    key,
                    nodes: vec![Node {
                        prefixes,
                        bits,
                        kind: NodeKind::Leaf { rows: vec![], pack: None },
                    }],
                    collect: None,
                    stale_leaves: 1,
                };
                self.subtrees.insert(i, subtree);
                // The new leaf starts un-packed (it is about to receive
                // its first row).
                self.total_leaves += 1;
                self.unpacked_leaves += 1;
                i
            }
        };

        // Descend to the home leaf by the word's bits, tracking its depth
        // (root = 0) so a split can patch the matching hierarchy level.
        let subtree = &mut self.subtrees[subtree_idx];
        let mut id = 0u32;
        let mut depth = 0usize;
        loop {
            match &subtree.nodes[id as usize].kind {
                NodeKind::Leaf { .. } => break,
                NodeKind::Inner { left, right, split_pos } => {
                    let pos = *split_pos as usize;
                    let child_bits = subtree.nodes[id as usize].bits[pos] + 1;
                    let bit = (word[pos] >> (symbol_bits - child_bits)) & 1;
                    id = if bit == 0 { *left } else { *right };
                    depth += 1;
                }
            }
        }
        let mut newly_unpacked = 0usize;
        match &mut subtree.nodes[id as usize].kind {
            NodeKind::Leaf { rows, pack } => {
                rows.push(row);
                // The leaf's contiguous run no longer covers all its rows:
                // drop the pack so refinement falls back to the exact
                // per-row path until `repack_leaves` runs.
                if pack.take().is_some() {
                    newly_unpacked += 1;
                }
            }
            NodeKind::Inner { .. } => unreachable!("descent ends at a leaf"),
        }
        // Each split turns one (un-packed) leaf into an inner node with
        // two un-packed leaves: +1 leaf, +1 un-packed, net. The subtree's
        // collect block is *not* rebuilt — the split node's lane keeps its
        // (parent-interval) bounds, which remain a valid lower bound for
        // both children; the collect sweep finishes such stale lanes with
        // a scalar descent until the next repack. When the split lands on
        // a recorded hierarchy level, the new inner node is appended to
        // that level's lanes (span = its own fringe lane), so level
        // pruning can retire the stale lane wholesale between repacks.
        let splits = split_while_overfull(
            subtree,
            id,
            depth,
            &self.words,
            &self.row_to_slot,
            self.word_len,
            symbol_bits,
            self.config.leaf_capacity,
            &self.summarization,
        );
        // Stale-lane accounting is per subtree (the incremental repack
        // rebuilds exactly the subtrees whose count is non-zero) with the
        // global tally kept alongside for the trigger threshold.
        subtree.stale_leaves += newly_unpacked + splits;
        self.total_leaves += splits;
        self.unpacked_leaves += newly_unpacked + splits;
        Ok(row)
    }

    /// The auto-repack trigger (ROADMAP PR-3 deferred item): once
    /// un-packed leaves exceed the configured percentage of the tree,
    /// restore the packed layout on the worker pool right away instead of
    /// waiting for an operator call. The trigger runs the *incremental*
    /// repack — only subtrees with stale lanes rebuild their word and
    /// collect blocks, untouched subtrees reuse theirs — so the dominant
    /// repack cost (block construction) scales with the touched portion
    /// of the tree (slot bookkeeping remains one O(n) scan; see
    /// [`Index::repack_incremental`]), keeping long-running serving
    /// instances on the batched leaf/collect sweeps.
    fn maybe_auto_repack(&mut self) {
        let Some(pct) = self.config.auto_repack_pct else { return };
        // Amortization floor: a repack still permutes shifted arena runs,
        // so it must be paid for by a batch of un-packed leaves. Without
        // the floor, a tree with single-digit leaf counts (the default
        // leaf_capacity is 20k) would exceed any percentage after one
        // insert and repack on *every* insert — quadratic bursts.
        const MIN_UNPACKED: usize = 8;
        if self.unpacked_leaves >= MIN_UNPACKED
            && self.unpacked_leaves * 100 > self.total_leaves.max(1) * pct as usize
        {
            self.repack_incremental();
        }
    }

    /// Inserts every series in a row-major buffer, returning the first new
    /// row id.
    ///
    /// # Errors
    /// Returns [`IndexError::BadDataset`] if the buffer is not a whole
    /// number of series.
    pub fn insert_all(&mut self, buffer: &[f32]) -> Result<u32, IndexError> {
        if buffer.is_empty() || buffer.len() % self.series_len != 0 {
            return Err(IndexError::BadDataset(
                "buffer must be a non-empty whole number of series".into(),
            ));
        }
        // Checked: with exactly u32::MAX + 1 rows already stored the
        // plain cast would wrap the returned first-row id to 0 (the
        // per-row inserts below would each error, but only after this
        // value was computed).
        let first = u32::try_from(self.data.len() / self.series_len)
            .map_err(|_| IndexError::TooManyRows { rows: self.data.len() / self.series_len })?;
        for series in buffer.chunks(self.series_len) {
            self.insert_without_repack(series)?;
        }
        // One auto-repack check for the whole burst: the trigger fires at
        // most once per `insert_all`, amortized over every row above.
        self.maybe_auto_repack();
        Ok(first)
    }
}

/// Splits `leaf` (at `leaf_depth`, root = 0) — and any over-full child
/// produced by the split — using the balanced-split rule, mutating the
/// subtree arena in place. `words` is in storage order; `row_to_slot`
/// maps the row ids stored in leaves to it. Returns the number of splits
/// performed (each adds one leaf).
///
/// When the splitting node is a recorded fringe lane of the subtree's
/// collect block and its depth lands on a kept hierarchy level, the new
/// inner node is appended to that level ([`LevelLanes`] +
/// [`sofa_summaries::LevelBlocks::push_level_lane`]) with a 1-wide span
/// covering exactly its own fringe lane. Pruning that lane then retires
/// the stale fringe lane — and with it the scalar descent into the split
/// children — wholesale, keeping level pruning sharp between repacks.
/// Deeper descendants of online splits have no fringe lane of their own
/// and are skipped: a 1-wide span over the shared ancestor lane would
/// retire the *sibling's* rows too, which would be unsound.
#[allow(clippy::too_many_arguments)]
fn split_while_overfull(
    subtree: &mut Subtree,
    leaf: u32,
    leaf_depth: usize,
    words: &[u8],
    row_to_slot: &[u32],
    l: usize,
    symbol_bits: u8,
    leaf_capacity: usize,
    summarization: &dyn Summarization,
) -> usize {
    let word_bit = |r: u32, j: usize, shift: u8| {
        (words[row_to_slot[r as usize] as usize * l + j] >> shift) & 1
    };
    let mut splits = 0usize;
    let mut pending = vec![(leaf, leaf_depth)];
    while let Some((id, depth)) = pending.pop() {
        let (rows, prefixes, bits) = {
            let node = &subtree.nodes[id as usize];
            let NodeKind::Leaf { rows, .. } = &node.kind else { continue };
            if rows.len() <= leaf_capacity {
                continue;
            }
            (rows.clone(), node.prefixes.clone(), node.bits.clone())
        };

        // Balanced split position (same rule as the bulk build).
        let mut best: Option<(usize, usize)> = None;
        for j in 0..l {
            if bits[j] >= symbol_bits {
                continue;
            }
            let shift = symbol_bits - bits[j] - 1;
            let ones = rows.iter().filter(|&&r| word_bit(r, j, shift) == 1).count();
            let zeros = rows.len() - ones;
            if ones == 0 || zeros == 0 {
                continue;
            }
            let imbalance = ones.abs_diff(zeros);
            let better = match best {
                None => true,
                Some((bi, bj)) => imbalance < bi || (imbalance == bi && bits[j] < bits[bj]),
            };
            if better {
                best = Some((imbalance, j));
            }
        }
        let Some((_, split_pos)) = best else {
            continue; // unsplittable: allow the over-full leaf
        };

        let shift = symbol_bits - bits[split_pos] - 1;
        let (zeros, ones): (Vec<u32>, Vec<u32>) =
            rows.iter().partition(|&&r| word_bit(r, split_pos, shift) == 0);

        let child = |bit: u8, rows: Vec<u32>| {
            let mut p = prefixes.clone();
            let mut b = bits.clone();
            p[split_pos] = (p[split_pos] << 1) | bit;
            b[split_pos] += 1;
            // Split children start un-packed: their rows are subsets of
            // the parent's (no longer contiguous) run.
            Node { prefixes: p, bits: b, kind: NodeKind::Leaf { rows, pack: None } }
        };
        let left = u32::try_from(subtree.nodes.len()).expect("node-id space (u32) exhausted");
        subtree.nodes.push(child(0, zeros));
        let right = u32::try_from(subtree.nodes.len()).expect("node-id space (u32) exhausted");
        subtree.nodes.push(child(1, ones));
        subtree.nodes[id as usize].kind =
            NodeKind::Inner { left, right, split_pos: split_pos as u16 };
        splits += 1;
        // Level patch (see the fn docs): only nodes that *are* a fringe
        // lane — build-time leaves — qualify, and only within the levels
        // the build actually kept.
        if let Some(cb) = subtree.collect.as_mut() {
            if (1..=cb.levels.len()).contains(&depth) {
                if let Some(lane) = cb.node_ids.iter().position(|&nid| nid == id) {
                    let li = depth - 1;
                    cb.levels[li].node_ids.push(id);
                    // Lossless: lane indexes cb.node_ids, whose length
                    // is bounded by the (u32) node count.
                    cb.levels[li].leaf_spans.push((lane as u32, lane as u32 + 1));
                    cb.level_blocks.push_level_lane(li, summarization, &prefixes, &bits);
                }
            }
        }
        pending.push((left, depth + 1));
        pending.push((right, depth + 1));
    }
    splits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::symbol_prefix;
    use crate::IndexConfig;
    use sofa_summaries::{ISax, SaxConfig};

    fn dataset(count: usize, n: usize, seed: usize) -> Vec<f32> {
        let mut data = Vec::with_capacity(count * n);
        for r in 0..count {
            for t in 0..n {
                let x = t as f32;
                let r = (r + seed) as f32;
                data.push((x * 0.21 + r).sin() + 0.6 * (x * (0.3 + (r % 13.0) * 0.07)).cos());
            }
        }
        data
    }

    fn empty_then_insert(data: &[f32], n: usize, leaf: usize) -> Index<ISax> {
        // Bootstrap with the first series, then insert the rest online.
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let mut idx =
            Index::build(sax, &data[..n], IndexConfig::with_threads(1).leaf_capacity(leaf))
                .expect("build");
        idx.insert_all(&data[n..]).expect("insert");
        idx
    }

    #[test]
    fn inserted_index_matches_bulk_built_queries() {
        let n = 64;
        let data = dataset(500, n, 0);
        let incremental = empty_then_insert(&data, n, 30);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let bulk = Index::build(sax, &data, IndexConfig::with_threads(1).leaf_capacity(30))
            .expect("build");
        let queries = dataset(6, n, 900);
        for q in queries.chunks(n) {
            let a = incremental.nn(q).expect("query");
            let b = bulk.nn(q).expect("query");
            assert!(
                (a.dist_sq - b.dist_sq).abs() < 1e-4 * a.dist_sq.max(1.0),
                "incremental {a:?} vs bulk {b:?}"
            );
        }
    }

    #[test]
    fn inserts_split_leaves() {
        let n = 64;
        let data = dataset(400, n, 3);
        let idx = empty_then_insert(&data, n, 10);
        let stats = idx.stats();
        assert!(stats.leaves > 1, "splitting must have happened: {stats:?}");
        assert_eq!(stats.n_series, 400);
    }

    #[test]
    fn every_inserted_row_respects_its_leaf_label() {
        let n = 64;
        let data = dataset(300, n, 7);
        let idx = empty_then_insert(&data, n, 20);
        for st in idx.subtrees() {
            for leaf in st.leaves() {
                for &r in leaf.rows() {
                    let w = idx.word(r as usize);
                    for (j, (&prefix, &b)) in leaf.prefixes.iter().zip(leaf.bits.iter()).enumerate()
                    {
                        if b == 0 {
                            continue;
                        }
                        assert_eq!(
                            symbol_prefix(w[j], b, 8),
                            prefix,
                            "row {r} violates label at {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn inserted_series_are_findable() {
        let n = 64;
        let base = dataset(100, n, 0);
        let extra = dataset(50, n, 5000);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let mut idx = Index::build(sax, &base, IndexConfig::with_threads(1).leaf_capacity(16))
            .expect("build");
        let first = idx.insert_all(&extra).expect("insert");
        assert_eq!(first, 100);
        // Each inserted series must find itself as its own 1-NN.
        for (i, s) in extra.chunks(n).enumerate() {
            let nn = idx.nn(s).expect("query");
            assert!(nn.dist_sq < 1e-4, "inserted series {i} not found: {nn:?}");
        }
    }

    #[test]
    fn auto_repack_triggers_on_bursts_and_respects_opt_out() {
        let n = 64;
        let data = dataset(600, n, 11);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let mut idx =
            Index::build(sax, &data[..300 * n], IndexConfig::with_threads(1).leaf_capacity(10))
                .expect("build");
        idx.insert_all(&data[300 * n..]).expect("insert");
        // The burst runs the trigger exactly once, at the end; afterwards
        // the un-packed share must sit below the (floored) threshold.
        let s = idx.stats();
        let unpacked = s.leaves - s.packed_leaves;
        assert!(
            unpacked < 8 || unpacked * 100 <= s.leaves * 25,
            "auto-repack did not hold the threshold: {unpacked}/{} un-packed",
            s.leaves
        );

        // Opting out leaves the fallback leaves in place until a manual
        // repack.
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let mut manual = Index::build(
            sax,
            &data[..300 * n],
            IndexConfig::with_threads(1).leaf_capacity(10).auto_repack_pct(None),
        )
        .expect("build");
        manual.insert_all(&data[300 * n..]).expect("insert");
        let s = manual.stats();
        assert!(s.packed_leaves < s.leaves, "opt-out must not repack: {s:?}");
        manual.repack_leaves();
        let s = manual.stats();
        assert_eq!(s.packed_leaves, s.leaves);
    }

    #[test]
    fn split_on_a_recorded_level_appends_a_level_lane() {
        use crate::node::CollectBlock;
        let l = 8usize;
        let sax = ISax::new(64, &SaxConfig { word_len: 8, alphabet: 256 });
        // Left-comb subtree: inner_i at depth i, left child a leaf, right
        // child inner_{i+1} (the last inner gets a right leaf). 26 leaves
        // clear the level-recording gate; the budget keeps depth 1, whose
        // only lane is inner_1 — and the depth-1 leaf (fringe lane 0) is
        // exactly the node a recorded-level split can patch.
        let n_inner = 25u32;
        let node = |kind| Node { prefixes: vec![0; l], bits: vec![1; l], kind };
        let mut nodes: Vec<Node> = (0..n_inner)
            .map(|i| {
                let right = if i + 1 < n_inner { i + 1 } else { n_inner + n_inner };
                node(NodeKind::Inner { left: n_inner + i, right, split_pos: 0 })
            })
            .collect();
        for _ in 0..=n_inner {
            nodes.push(node(NodeKind::Leaf { rows: vec![], pack: None }));
        }
        let mut subtree = Subtree { key: 0, nodes, collect: None, stale_leaves: 0 };
        subtree.collect = Some(CollectBlock::build(&sax, &subtree, 6));
        let cb = subtree.collect.as_ref().unwrap();
        assert_eq!(cb.levels.len(), 1, "budget must keep exactly depth 1");
        let lanes_before = cb.levels[0].node_ids.len();
        assert_eq!(cb.node_ids[0], n_inner, "depth-1 leaf must be fringe lane 0");

        // Over-fill the depth-1 leaf with 12 rows whose words differ only
        // in position 0's second bit (6/6), then split it.
        let target = n_inner;
        let rows: Vec<u32> = (0..12).collect();
        let mut words = vec![0u8; 12 * l];
        for r in 0..12 {
            words[r * l] = if r % 2 == 0 { 0x00 } else { 0x40 };
        }
        let row_to_slot: Vec<u32> = (0..12).collect();
        match &mut subtree.nodes[target as usize].kind {
            NodeKind::Leaf { rows: slot, .. } => *slot = rows,
            NodeKind::Inner { .. } => unreachable!(),
        }
        let splits =
            split_while_overfull(&mut subtree, target, 1, &words, &row_to_slot, l, 8, 8, &sax);
        assert_eq!(splits, 1);
        let cb = subtree.collect.as_ref().unwrap();
        assert_eq!(cb.levels[0].node_ids.len(), lanes_before + 1, "lane not appended");
        assert_eq!(*cb.levels[0].node_ids.last().unwrap(), target);
        // The appended span covers exactly the split node's own fringe
        // lane — never the siblings'.
        assert_eq!(*cb.levels[0].leaf_spans.last().unwrap(), (0, 1));
        assert_eq!(cb.level_blocks.level(0).n(), lanes_before + 1);

        // A deeper split (depth 2 leaf = left child of inner_1; no lane
        // of its own on the kept level... and past cb.levels anyway) must
        // append nothing.
        let deep_leaf = n_inner + 1;
        let rows: Vec<u32> = (0..12).collect();
        match &mut subtree.nodes[deep_leaf as usize].kind {
            NodeKind::Leaf { rows: slot, .. } => *slot = rows,
            NodeKind::Inner { .. } => unreachable!(),
        }
        let splits =
            split_while_overfull(&mut subtree, deep_leaf, 2, &words, &row_to_slot, l, 8, 8, &sax);
        assert_eq!(splits, 1);
        let cb = subtree.collect.as_ref().unwrap();
        assert_eq!(cb.levels[0].node_ids.len(), lanes_before + 1, "deep split must not patch");
    }

    #[test]
    fn insert_splits_keep_level_lanes_consistent() {
        // Concentrated square-wave data: every row shares one root key, so
        // the single subtree grows deep enough to record level blocks.
        let n = 64;
        let square = |r: usize, t: usize| {
            let base = if (t / 8) % 2 == 0 { 1.0f32 } else { -1.0 };
            base * (1.0 + 0.6 * ((t as f32 * 0.1 + r as f32 * 0.7).sin()))
        };
        let mut data = Vec::with_capacity(900 * n);
        for r in 0..900 {
            for t in 0..n {
                data.push(square(r, t));
            }
        }
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let mut idx = Index::build(
            sax,
            &data,
            // Auto-repack off so the split-time patch (not a rebuild) is
            // what the assertions observe.
            IndexConfig::with_threads(1).leaf_capacity(8).auto_repack_pct(None),
        )
        .expect("build");
        assert!(
            !idx.subtrees()[0].collect.as_ref().expect("collect block").levels.is_empty(),
            "deep build must record levels"
        );

        // Insert enough rows to force splits across the tree.
        let mut extra = Vec::with_capacity(400 * n);
        for r in 900..1300 {
            for t in 0..n {
                extra.push(square(r, t));
            }
        }
        idx.insert_all(&extra).expect("insert");

        let cb = idx.subtrees()[0].collect.as_ref().expect("collect block");
        // After the burst every level lane — build-time or appended —
        // stays consistent with its level block and fringe.
        for (li, lanes) in cb.levels.iter().enumerate() {
            assert_eq!(lanes.node_ids.len(), lanes.leaf_spans.len());
            assert_eq!(lanes.node_ids.len(), cb.level_blocks.level(li).n());
            for (lane, &(lo, hi)) in lanes.node_ids.iter().zip(&lanes.leaf_spans) {
                assert!(lo < hi, "empty span");
                assert!((hi as usize) <= cb.node_ids.len());
                assert!(!idx.subtrees()[0].nodes[*lane as usize].is_leaf());
            }
        }

        // Exactness is untouched: every inserted row finds itself, and
        // results match a bulk-built index over the same rows.
        let mut all = data.clone();
        all.extend_from_slice(&extra);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let bulk =
            Index::build(sax, &all, IndexConfig::with_threads(1).leaf_capacity(8)).expect("build");
        for r in (0..1300).step_by(97) {
            let q = &all[r * n..(r + 1) * n];
            let (a, stats) = idx.knn_with_stats(q, 3).expect("query");
            let b = bulk.knn(q, 3).expect("query");
            for (x, y) in a.iter().zip(&b) {
                assert!(
                    (x.dist_sq - y.dist_sq).abs() < 1e-4 * x.dist_sq.max(1.0),
                    "patched {x:?} vs bulk {y:?}"
                );
            }
            assert!(stats.leaves_collected > 0 || stats.nodes_pruned > 0, "{stats:?}");
        }
    }

    #[test]
    fn insert_rejects_wrong_length() {
        let n = 32;
        let data = dataset(10, n, 0);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let mut idx = Index::build(sax, &data, IndexConfig::default()).expect("build");
        assert!(idx.insert(&[0.0; 31]).is_err());
        assert!(idx.insert_all(&[0.0; 33]).is_err());
    }

    #[test]
    fn insert_creates_new_subtrees_when_needed() {
        let n = 64;
        // Bootstrap with a smooth series, then insert a very different one
        // whose root key should differ.
        let smooth: Vec<f32> = (0..n).map(|t| (t as f32 * 0.1).sin()).collect();
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let mut idx = Index::build(sax, &smooth, IndexConfig::with_threads(1).leaf_capacity(4))
            .expect("build");
        let before = idx.subtrees().len();
        let spiky: Vec<f32> =
            (0..n).map(|t| if t % 2 == 0 { 1.0 } else { -1.0 } * (t as f32 * 0.9).cos()).collect();
        idx.insert(&spiky).expect("insert");
        assert!(idx.subtrees().len() >= before);
        let nn = idx.nn(&spiky).expect("query");
        assert!(nn.dist_sq < 1e-4);
    }
}
