//! Tree nodes and subtrees.
//!
//! The index is a forest: each [`Subtree`] hangs off an implicit root and
//! is identified by its **root key** — the first bit of every word
//! position (paper §IV-B: the root has up to `2^w` children). Inside a
//! subtree, every node carries a variable-cardinality summary: per word
//! position, a bit-prefix (`prefixes[j]`, using the `bits[j]` most
//! significant bits of the symbol). An inner node's two children extend
//! one position by one bit (set to 0 and 1 — the iSAX split), chosen to
//! balance the series between them (as in iSAX 2.0 / MESSI).

use sofa_summaries::{NodeBlock, Summarization, WordBlock};

/// Node id within one subtree's arena.
pub type NodeId = u32;

/// Query-acceleration storage of a packed leaf: after the build's packing
/// phase, the leaf's series occupy a contiguous run of *storage slots*
/// (`start .. start + rows.len()`) in the index's data/words arenas, in
/// `rows` order, and `block` holds the leaf's words as a
/// structure-of-arrays [`WordBlock`] for the batched lower-bound sweep.
/// Online inserts into a leaf drop its pack (set it to `None`): the
/// refinement path then falls back to per-row evaluation for that leaf
/// until [`crate::Index::repack_leaves`] rebuilds the layout.
#[derive(Clone, Debug)]
pub struct LeafPack {
    /// First storage slot of the leaf's contiguous series/words run.
    pub start: u32,
    /// SoA lower-bound block over the leaf's words (8 candidates/group).
    pub block: WordBlock,
}

/// The payload of a node.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Leaf: row ids of the series stored here.
    Leaf {
        /// Original row ids of the series stored here (results are
        /// reported in these ids; storage may be permuted — see
        /// [`LeafPack`]).
        rows: Vec<u32>,
        /// Contiguous-storage acceleration state; `None` until the build
        /// packs leaves or after an online insert touched this leaf.
        pack: Option<LeafPack>,
    },
    /// Inner node: refined on `split_pos` by one bit.
    Inner {
        /// Child whose new bit is 0.
        left: NodeId,
        /// Child whose new bit is 1.
        right: NodeId,
        /// The word position whose cardinality the split increased.
        split_pos: u16,
    },
}

/// One tree node: variable-cardinality summary plus payload.
#[derive(Clone, Debug)]
pub struct Node {
    /// Per-position symbol bit-prefixes (most-significant bits).
    pub prefixes: Vec<u8>,
    /// Per-position number of bits in use (0..=symbol_bits).
    pub bits: Vec<u8>,
    /// Leaf or inner payload.
    pub kind: NodeKind,
}

impl Node {
    /// `true` when this node is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }

    /// Rows stored here (empty for inner nodes).
    #[must_use]
    pub fn rows(&self) -> &[u32] {
        match &self.kind {
            NodeKind::Leaf { rows, .. } => rows,
            NodeKind::Inner { .. } => &[],
        }
    }

    /// The leaf's packed-storage state (`None` for inner nodes and for
    /// leaves invalidated by online inserts).
    #[must_use]
    pub fn pack(&self) -> Option<&LeafPack> {
        match &self.kind {
            NodeKind::Leaf { pack, .. } => pack.as_ref(),
            NodeKind::Inner { .. } => None,
        }
    }
}

/// Collect-phase acceleration state of one subtree: the subtree's leaves'
/// prefix quantization intervals as a structure-of-arrays
/// [`NodeBlock`] (padded groups of 8), lane-parallel with `node_ids`.
///
/// The collect phase sweeps this block 8 leaves per dispatched kernel call
/// instead of walking the arena with a scalar `mindist_node` per node.
/// Coherence across online splits is maintained *without rebuilding*: a
/// split keeps the node's `prefixes`/`bits` and only changes its kind to
/// `Inner`, so the lane's interval bounds remain a valid (parent-interval)
/// lower bound for everything below it — the sweep detects such stale
/// lanes by node kind and finishes them with a tiny scalar DFS over the
/// freshly split descendants. [`crate::Index::repack_leaves`] rebuilds the
/// block to pure leaves.
#[derive(Clone, Debug)]
pub struct CollectBlock {
    /// Arena node id per block lane (leaves at build time; a lane can
    /// point at an `Inner` node after online splits — see above).
    pub node_ids: Vec<u32>,
    /// SoA interval bounds of the lanes' `prefixes`/`bits`.
    pub block: NodeBlock,
}

impl CollectBlock {
    /// Builds the block over every leaf of `subtree`, in arena order.
    #[must_use]
    pub fn build(summarization: &dyn Summarization, subtree: &Subtree) -> Self {
        let mut node_ids = Vec::new();
        let mut labels: Vec<(&[u8], &[u8])> = Vec::new();
        for (id, node) in subtree.nodes.iter().enumerate() {
            if node.is_leaf() {
                node_ids.push(id as u32);
                labels.push((&node.prefixes, &node.bits));
            }
        }
        CollectBlock { node_ids, block: NodeBlock::build(summarization, &labels) }
    }
}

/// A subtree: its root key and an arena of nodes (`nodes[root]` is the
/// subtree root). Subtrees are independent — MESSI exploits exactly this
/// for lock-free parallel construction and traversal.
#[derive(Clone, Debug)]
pub struct Subtree {
    /// Root key: bit `j` is the most significant bit of word position `j`.
    pub key: u64,
    /// Node arena; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Batched collect-phase pruning state (`None` only for subtrees that
    /// have never been packed; the query path then falls back to the
    /// scalar DFS).
    pub collect: Option<CollectBlock>,
}

impl Subtree {
    /// The root node.
    #[must_use]
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Iterates over all leaves.
    pub fn leaves(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.is_leaf())
    }

    /// Number of series stored in this subtree.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.leaves().map(|l| l.rows().len()).sum()
    }

    /// Depth of each leaf (root = depth 0), used by the Figure 8 stats.
    #[must_use]
    pub fn leaf_depths(&self) -> Vec<usize> {
        let mut depths = Vec::new();
        // Iterative DFS with explicit depth tracking.
        let mut stack: Vec<(NodeId, usize)> = vec![(0, 0)];
        while let Some((id, d)) = stack.pop() {
            match &self.nodes[id as usize].kind {
                NodeKind::Leaf { .. } => depths.push(d),
                NodeKind::Inner { left, right, .. } => {
                    stack.push((*left, d + 1));
                    stack.push((*right, d + 1));
                }
            }
        }
        depths
    }
}

/// Computes the root key of a word: bit `j` = most significant bit of
/// symbol `j`.
///
/// # Panics
/// Panics if the word is longer than 64 positions (`u64` key space).
#[inline]
#[must_use]
pub fn root_key(word: &[u8], symbol_bits: u8) -> u64 {
    assert!(word.len() <= 64, "word length > 64 unsupported");
    debug_assert!(symbol_bits >= 1);
    let mut key = 0u64;
    for (j, &s) in word.iter().enumerate() {
        let top_bit = u64::from(s >> (symbol_bits - 1)) & 1;
        key |= top_bit << j;
    }
    key
}

/// Extracts the `bits` most significant bits of `symbol`.
#[inline]
#[must_use]
pub fn symbol_prefix(symbol: u8, bits: u8, symbol_bits: u8) -> u8 {
    if bits == 0 {
        0
    } else {
        symbol >> (symbol_bits - bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_key_uses_top_bits() {
        // symbols with 8 bits: top bit set iff >= 128.
        let word = [0u8, 255, 127, 128];
        let key = root_key(&word, 8);
        assert_eq!(key, 0b1010);
    }

    #[test]
    fn root_key_small_alphabet() {
        // 2-bit symbols: top bit set iff >= 2.
        let word = [0u8, 1, 2, 3];
        assert_eq!(root_key(&word, 2), 0b1100);
    }

    #[test]
    fn symbol_prefix_extraction() {
        assert_eq!(symbol_prefix(0b1011_0000, 0, 8), 0);
        assert_eq!(symbol_prefix(0b1011_0000, 1, 8), 0b1);
        assert_eq!(symbol_prefix(0b1011_0000, 4, 8), 0b1011);
        assert_eq!(symbol_prefix(0b1011_0000, 8, 8), 0b1011_0000);
    }

    #[test]
    fn leaf_depths_of_small_tree() {
        // root(inner) -> [leaf, inner -> [leaf, leaf]]
        let leaf = |rows: Vec<u32>| Node {
            prefixes: vec![0; 2],
            bits: vec![1; 2],
            kind: NodeKind::Leaf { rows, pack: None },
        };
        let subtree = Subtree {
            key: 0,
            collect: None,
            nodes: vec![
                Node {
                    prefixes: vec![0; 2],
                    bits: vec![1; 2],
                    kind: NodeKind::Inner { left: 1, right: 2, split_pos: 0 },
                },
                leaf(vec![1, 2]),
                Node {
                    prefixes: vec![0; 2],
                    bits: vec![2; 2],
                    kind: NodeKind::Inner { left: 3, right: 4, split_pos: 1 },
                },
                leaf(vec![3]),
                leaf(vec![4, 5]),
            ],
        };
        let mut d = subtree.leaf_depths();
        d.sort_unstable();
        assert_eq!(d, vec![1, 2, 2]);
        assert_eq!(subtree.n_rows(), 5);
        assert_eq!(subtree.leaves().count(), 3);
    }
}
