//! Tree nodes and subtrees.
//!
//! The index is a forest: each [`Subtree`] hangs off an implicit root and
//! is identified by its **root key** — the first bit of every word
//! position (paper §IV-B: the root has up to `2^w` children). Inside a
//! subtree, every node carries a variable-cardinality summary: per word
//! position, a bit-prefix (`prefixes[j]`, using the `bits[j]` most
//! significant bits of the symbol). An inner node's two children extend
//! one position by one bit (set to 0 and 1 — the iSAX split), chosen to
//! balance the series between them (as in iSAX 2.0 / MESSI).

use sofa_summaries::{LevelBlocks, NodeBlock, QuantBlock, Summarization, WordBlock};

/// Node id within one subtree's arena.
pub type NodeId = u32;

/// Query-acceleration storage of a packed leaf: after the build's packing
/// phase, the leaf's series occupy a contiguous run of *storage slots*
/// (`start .. start + rows.len()`) in the index's data/words arenas, in
/// `rows` order, and `block` holds the leaf's words as a
/// structure-of-arrays [`WordBlock`] for the batched lower-bound sweep.
/// Online inserts into a leaf drop its pack (set it to `None`): the
/// refinement path then falls back to per-row evaluation for that leaf
/// until [`crate::Index::repack_leaves`] rebuilds the layout.
#[derive(Clone, Debug)]
pub struct LeafPack {
    /// First storage slot of the leaf's contiguous series/words run.
    pub start: u32,
    /// SoA lower-bound block over the leaf's words (8 candidates/group).
    pub block: WordBlock,
    /// Scalar-quantized codes + per-row error bounds over the same rows,
    /// encoded under the index-wide grid — the compressed middle refine
    /// tier. `None` when the tier is disabled
    /// ([`crate::IndexConfig::quant_refine`]) or no grid could be trained
    /// (degenerate constant/non-finite data); refinement then goes
    /// straight from the word bound to the exact scan.
    pub quant: Option<QuantBlock>,
}

/// Longest series length the quantized refine tier covers. The refine
/// phase quantizes the query into a fixed stack buffer of this size (it
/// must stay allocation-free), so repacking skips the tier for longer
/// series — they simply keep the two-stage word → `f32` path.
pub(crate) const QUANT_REFINE_MAX_LEN: usize = 2048;

/// The payload of a node.
#[derive(Clone, Debug)]
pub enum NodeKind {
    /// Leaf: row ids of the series stored here.
    Leaf {
        /// Original row ids of the series stored here (results are
        /// reported in these ids; storage may be permuted — see
        /// [`LeafPack`]).
        rows: Vec<u32>,
        /// Contiguous-storage acceleration state; `None` until the build
        /// packs leaves or after an online insert touched this leaf.
        pack: Option<LeafPack>,
    },
    /// Inner node: refined on `split_pos` by one bit.
    Inner {
        /// Child whose new bit is 0.
        left: NodeId,
        /// Child whose new bit is 1.
        right: NodeId,
        /// The word position whose cardinality the split increased.
        split_pos: u16,
    },
}

/// One tree node: variable-cardinality summary plus payload.
#[derive(Clone, Debug)]
pub struct Node {
    /// Per-position symbol bit-prefixes (most-significant bits).
    pub prefixes: Vec<u8>,
    /// Per-position number of bits in use (0..=symbol_bits).
    pub bits: Vec<u8>,
    /// Leaf or inner payload.
    pub kind: NodeKind,
}

impl Node {
    /// `true` when this node is a leaf.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self.kind, NodeKind::Leaf { .. })
    }

    /// Rows stored here (empty for inner nodes).
    #[must_use]
    pub fn rows(&self) -> &[u32] {
        match &self.kind {
            NodeKind::Leaf { rows, .. } => rows,
            NodeKind::Inner { .. } => &[],
        }
    }

    /// The leaf's packed-storage state (`None` for inner nodes and for
    /// leaves invalidated by online inserts).
    #[must_use]
    pub fn pack(&self) -> Option<&LeafPack> {
        match &self.kind {
            NodeKind::Leaf { pack, .. } => pack.as_ref(),
            NodeKind::Inner { .. } => None,
        }
    }
}

/// Lane metadata of one hierarchy level in a [`CollectBlock`]: the arena
/// node ids of the level's internal nodes (left-to-right) and, per lane,
/// the half-open span `[leaf_lo, leaf_hi)` of *leaf-fringe lane indices*
/// its subtree covers. Pruning a level lane retires that whole span — the
/// coarse prune a leaf-only sweep cannot express.
#[derive(Clone, Debug, Default)]
pub struct LevelLanes {
    /// Arena node id per lane (always `Inner` nodes at build time).
    pub node_ids: Vec<u32>,
    /// Per-lane descendant leaf range in fringe-lane index space.
    pub leaf_spans: Vec<(u32, u32)>,
}

/// Hierarchy levels below which a [`CollectBlock`] stops recording
/// internal nodes; deeper subtrees fall through to the leaf fringe. See
/// [`crate::IndexConfig::collect_levels`].
pub const DEFAULT_COLLECT_LEVELS: usize = 6;

/// A level sweep only pays off once the leaf fringe spans several kernel
/// groups; below this many leaves the block is built fringe-only. The
/// value is the smallest fringe whose cost budget (a quarter of its
/// kernel groups, see [`CollectBlock::build`]) admits at least one level
/// group — matching the gate to the budget, so the DFS never records
/// level lanes the truncation is guaranteed to discard.
const MIN_LEAVES_FOR_LEVELS: usize = 3 * sofa_simd::BLOCK_LANES + 1;

/// Collect-phase acceleration state of one subtree: the subtree's leaves'
/// prefix quantization intervals as a structure-of-arrays
/// [`NodeBlock`] (padded groups of 8), lane-parallel with `node_ids`,
/// plus — for subtrees deep enough to profit — [`LevelBlocks`] over the
/// top levels of internal nodes so whole descendant leaf ranges retire on
/// one pruned ancestor lane.
///
/// The leaf fringe is stored in **DFS (pre-order) order**, not arena
/// order: that makes every internal node's descendant leaves a contiguous
/// range of fringe lanes, which is what lets a level lane carry a
/// `(leaf_lo, leaf_hi)` span (see [`LevelLanes`]).
///
/// The collect phase sweeps the levels top-down and then the surviving
/// fringe, 8 lanes per dispatched kernel call, instead of walking the
/// arena with a scalar `mindist_node` per node. Coherence across online
/// splits is maintained *without rebuilding*: a split keeps the node's
/// `prefixes`/`bits` and only changes its kind to `Inner`, so the lane's
/// interval bounds remain a valid (parent-interval) lower bound for
/// everything below it — the sweep detects such stale lanes by node kind
/// and finishes them with a tiny scalar DFS over the freshly split
/// descendants. [`crate::Index::repack_leaves`] (or the incremental
/// repack) rebuilds the block to pure leaves.
#[derive(Clone, Debug)]
pub struct CollectBlock {
    /// Arena node id per fringe lane, DFS order (leaves at build time; a
    /// lane can point at an `Inner` node after online splits — see above).
    pub node_ids: Vec<u32>,
    /// SoA interval bounds of the fringe lanes' `prefixes`/`bits`.
    pub block: NodeBlock,
    /// Lane metadata per hierarchy level (depth 1 first; the subtree root
    /// is priced by the caller's `RootLbd` gate). Empty for shallow
    /// subtrees or `collect_levels == 0`.
    pub levels: Vec<LevelLanes>,
    /// SoA interval bounds per level, parallel with `levels`.
    pub level_blocks: LevelBlocks,
}

/// DFS traversal event (explicit stack; `Close` patches a level lane's
/// span end once its subtree has fully emitted).
enum Visit {
    Node(NodeId, usize),
    Close { level: usize, lane: usize },
}

impl CollectBlock {
    /// Builds the block over every leaf of `subtree` in DFS order, and —
    /// when the fringe is wide enough — [`LevelBlocks`] over the internal
    /// nodes of the top `max_levels` levels.
    ///
    /// Levels are only recorded within a **cost budget**: the kernel
    /// groups needed to sweep every kept level must total at most a
    /// quarter of the leaf fringe's groups. That bounds the worst case —
    /// a query the hierarchy cannot prune for pays at most ~25% extra
    /// collect work — while a single mid-level prune on a deep tree still
    /// retires hundreds of fringe groups for a handful of level calls.
    #[must_use]
    pub fn build(summarization: &dyn Summarization, subtree: &Subtree, max_levels: usize) -> Self {
        let n_leaves = subtree.nodes.iter().filter(|n| n.is_leaf()).count();
        let record_levels = max_levels > 0 && n_leaves >= MIN_LEAVES_FOR_LEVELS;
        let mut node_ids = Vec::with_capacity(n_leaves);
        let mut labels: Vec<(&[u8], &[u8])> = Vec::with_capacity(n_leaves);
        let mut levels: Vec<LevelLanes> = Vec::new();
        let mut level_labels: Vec<Vec<(&[u8], &[u8])>> = Vec::new();
        let mut stack = vec![Visit::Node(0, 0)];
        while let Some(visit) = stack.pop() {
            match visit {
                Visit::Node(id, depth) => {
                    let node = &subtree.nodes[id as usize];
                    match &node.kind {
                        NodeKind::Leaf { .. } => {
                            node_ids.push(id);
                            labels.push((&node.prefixes, &node.bits));
                        }
                        NodeKind::Inner { left, right, .. } => {
                            if record_levels && (1..=max_levels).contains(&depth) {
                                let li = depth - 1;
                                if levels.len() <= li {
                                    levels.push(LevelLanes::default());
                                    level_labels.push(Vec::new());
                                }
                                levels[li].node_ids.push(id);
                                // Span start = next fringe lane; the end is
                                // patched by the matching `Close`.
                                levels[li].leaf_spans.push((node_ids.len() as u32, 0));
                                level_labels[li].push((&node.prefixes, &node.bits));
                                stack.push(Visit::Close {
                                    level: li,
                                    lane: levels[li].leaf_spans.len() - 1,
                                });
                            }
                            // Pre-order: left subtree fully, then right.
                            stack.push(Visit::Node(*right, depth + 1));
                            stack.push(Visit::Node(*left, depth + 1));
                        }
                    }
                }
                Visit::Close { level, lane } => {
                    levels[level].leaf_spans[lane].1 = node_ids.len() as u32;
                }
            }
        }
        // Enforce the cost budget (see the doc comment): keep the level
        // prefix whose cumulative group count fits a quarter of the
        // fringe's groups; everything below the first offender is dropped
        // with it.
        let budget = n_leaves.div_ceil(sofa_simd::BLOCK_LANES) / 4;
        let mut spent = 0usize;
        let cut = levels
            .iter()
            .position(|l| {
                spent += l.node_ids.len().div_ceil(sofa_simd::BLOCK_LANES);
                spent > budget
            })
            .unwrap_or(levels.len());
        levels.truncate(cut);
        level_labels.truncate(cut);
        CollectBlock {
            node_ids,
            block: NodeBlock::build(summarization, &labels),
            level_blocks: LevelBlocks::build(summarization, &level_labels),
            levels,
        }
    }
}

/// A subtree: its root key and an arena of nodes (`nodes[root]` is the
/// subtree root). Subtrees are independent — MESSI exploits exactly this
/// for lock-free parallel construction and traversal.
#[derive(Clone, Debug)]
pub struct Subtree {
    /// Root key: bit `j` is the most significant bit of word position `j`.
    pub key: u64,
    /// Node arena; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Batched collect-phase pruning state (`None` only for subtrees that
    /// have never been packed; the query path then falls back to the
    /// scalar DFS).
    pub collect: Option<CollectBlock>,
    /// Leaves of this subtree whose packed layout went stale (dropped
    /// packs from online inserts, split children). Drives the incremental
    /// repack: only subtrees with `stale_leaves > 0` rebuild their word
    /// and collect blocks; clean subtrees reuse theirs.
    pub stale_leaves: usize,
}

impl Subtree {
    /// The root node.
    #[must_use]
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Iterates over all leaves.
    pub fn leaves(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.is_leaf())
    }

    /// Number of series stored in this subtree.
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.leaves().map(|l| l.rows().len()).sum()
    }

    /// Depth of each leaf (root = depth 0), used by the Figure 8 stats.
    #[must_use]
    pub fn leaf_depths(&self) -> Vec<usize> {
        let mut depths = Vec::new();
        // Iterative DFS with explicit depth tracking.
        let mut stack: Vec<(NodeId, usize)> = vec![(0, 0)];
        while let Some((id, d)) = stack.pop() {
            match &self.nodes[id as usize].kind {
                NodeKind::Leaf { .. } => depths.push(d),
                NodeKind::Inner { left, right, .. } => {
                    stack.push((*left, d + 1));
                    stack.push((*right, d + 1));
                }
            }
        }
        depths
    }
}

/// Computes the root key of a word: bit `j` = most significant bit of
/// symbol `j`.
///
/// # Panics
/// Panics if the word is longer than 64 positions (`u64` key space).
#[inline]
#[must_use]
pub fn root_key(word: &[u8], symbol_bits: u8) -> u64 {
    assert!(word.len() <= 64, "word length > 64 unsupported");
    debug_assert!(symbol_bits >= 1);
    let mut key = 0u64;
    for (j, &s) in word.iter().enumerate() {
        let top_bit = u64::from(s >> (symbol_bits - 1)) & 1;
        key |= top_bit << j;
    }
    key
}

/// Extracts the `bits` most significant bits of `symbol`.
#[inline]
#[must_use]
pub fn symbol_prefix(symbol: u8, bits: u8, symbol_bits: u8) -> u8 {
    if bits == 0 {
        0
    } else {
        symbol >> (symbol_bits - bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_key_uses_top_bits() {
        // symbols with 8 bits: top bit set iff >= 128.
        let word = [0u8, 255, 127, 128];
        let key = root_key(&word, 8);
        assert_eq!(key, 0b1010);
    }

    #[test]
    fn root_key_small_alphabet() {
        // 2-bit symbols: top bit set iff >= 2.
        let word = [0u8, 1, 2, 3];
        assert_eq!(root_key(&word, 2), 0b1100);
    }

    #[test]
    fn symbol_prefix_extraction() {
        assert_eq!(symbol_prefix(0b1011_0000, 0, 8), 0);
        assert_eq!(symbol_prefix(0b1011_0000, 1, 8), 0b1);
        assert_eq!(symbol_prefix(0b1011_0000, 4, 8), 0b1011);
        assert_eq!(symbol_prefix(0b1011_0000, 8, 8), 0b1011_0000);
    }

    #[test]
    fn collect_block_levels_carry_dfs_leaf_spans() {
        use sofa_summaries::{ISax, SaxConfig};
        // Right-spine chain: root -> (leaf, inner -> (leaf, inner -> ...)),
        // 129 leaves so the fringe clears the level cost budget.
        let l = 2usize;
        let spine = 128u32;
        let leaf = |rows: Vec<u32>| Node {
            prefixes: vec![0; l],
            bits: vec![1; l],
            kind: NodeKind::Leaf { rows, pack: None },
        };
        let mut nodes = Vec::new();
        // Arena: spine inners first (ids 0..128), then leaves — deliberately
        // NOT DFS order, to prove the block reorders.
        for depth in 0..spine {
            nodes.push(Node {
                prefixes: vec![0; l],
                bits: vec![1; l],
                kind: NodeKind::Inner {
                    left: spine + depth, // leaf at this depth
                    right: if depth == spine - 1 { 2 * spine } else { depth + 1 },
                    split_pos: 0,
                },
            });
        }
        for r in 0..=spine {
            nodes.push(leaf(vec![r]));
        }
        let subtree = Subtree { key: 0, nodes, collect: None, stale_leaves: 0 };
        let sax = ISax::new(64, &SaxConfig { word_len: l, alphabet: 4 });
        let cb = CollectBlock::build(&sax, &subtree, 4);
        // Fringe: leaves in DFS order = arena ids 128, 129, ..., 256.
        assert_eq!(cb.node_ids.len(), 129);
        assert_eq!(cb.node_ids, (spine..=2 * spine).collect::<Vec<u32>>());
        assert_eq!(cb.block.n(), 129);
        // Levels 1..=4: one spine inner each (1 kernel group per level —
        // 4 total, within the 17-group fringe's budget of 4); the depth-d
        // spine covers every leaf after the d leaves emitted above it.
        assert_eq!(cb.levels.len(), 4);
        assert_eq!(cb.level_blocks.n_levels(), 4);
        for (li, lanes) in cb.levels.iter().enumerate() {
            assert_eq!(lanes.node_ids, vec![li as u32 + 1], "level {li}");
            assert_eq!(lanes.leaf_spans, vec![(li as u32 + 1, 129)], "level {li}");
            assert_eq!(cb.level_blocks.level(li).n(), 1);
        }
        // Shallow trees and collect_levels == 0 skip the hierarchy.
        let cb0 = CollectBlock::build(&sax, &subtree, 0);
        assert!(cb0.levels.is_empty());
        assert!(cb0.level_blocks.is_empty());
        assert_eq!(cb0.node_ids, cb.node_ids);
    }

    #[test]
    fn leaf_depths_of_small_tree() {
        // root(inner) -> [leaf, inner -> [leaf, leaf]]
        let leaf = |rows: Vec<u32>| Node {
            prefixes: vec![0; 2],
            bits: vec![1; 2],
            kind: NodeKind::Leaf { rows, pack: None },
        };
        let subtree = Subtree {
            key: 0,
            collect: None,
            stale_leaves: 0,
            nodes: vec![
                Node {
                    prefixes: vec![0; 2],
                    bits: vec![1; 2],
                    kind: NodeKind::Inner { left: 1, right: 2, split_pos: 0 },
                },
                leaf(vec![1, 2]),
                Node {
                    prefixes: vec![0; 2],
                    bits: vec![2; 2],
                    kind: NodeKind::Inner { left: 3, right: 4, split_pos: 1 },
                },
                leaf(vec![3]),
                leaf(vec![4, 5]),
            ],
        };
        let mut d = subtree.leaf_depths();
        d.sort_unstable();
        assert_eq!(d, vec![1, 2, 2]);
        assert_eq!(subtree.n_rows(), 5);
        assert_eq!(subtree.leaves().count(), 3);
    }
}
