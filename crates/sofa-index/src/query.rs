//! Exact query answering (paper §IV-C, Figure 5 stage 2).
//!
//! The three GEMINI phases — approximate seed, parallel collect, parallel
//! refine — are documented on the crate root. All pruning reads a shared
//! atomic best-so-far bound (the k-th best distance for k-NN); every
//! surviving candidate pays a SIMD lower-bound check before the real
//! distance is computed, both early-abandoned against the bound.
//!
//! Both batched sweeps run here. The **collect phase** prices each
//! subtree with one [`RootLbd`] XOR evaluation, then sweeps the subtree's
//! leaves 8 at a time through [`mindist_node_block`] over the
//! build-time-resolved [`crate::CollectBlock`] (whole groups of leaves
//! abandon against the bound mid-sum); the **refine phase** then
//! lower-bounds each surviving leaf's candidates 8 at a time through
//! [`mindist_block`]. Scalar `mindist_node` survives only on the cold
//! paths: the approximate descent and lanes left stale by online splits.
//!
//! Parallel phases execute on the index's persistent
//! [`sofa_exec::ExecPool`] (no per-query thread spawning), and every
//! per-query buffer — context values, query word, queues, k-NN heap, DFS
//! stacks — comes from a pooled [`crate::scratch::QueryScratch`], so the
//! steady-state serial path performs zero heap allocations and
//! [`Index::knn_batch`] lanes reuse one scratch per lane across the whole
//! mini-batch.

use crate::bsf::{KnnSet, Neighbor};
use crate::node::{root_key, LeafPack, NodeKind, Subtree};
use crate::scratch::{LaneScratch, LeafQueue, QueryScratch, QueueEntry};
use crate::{Index, IndexError};
use parking_lot::Mutex;
use sofa_exec::CancelToken;
use sofa_simd::{euclidean_sq_early_abandon, quant_lower_bound, BLOCK_LANES, BOUNDS_STRIDE};
use sofa_summaries::{
    mindist_block, mindist_level_block, mindist_node, mindist_node_block, mindist_simd,
    QueryContext, RootLbd, Summarization,
};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Minimum word-bound survivors in an 8-lane group before the quantized
/// refine tier prices it. The integer sweep streams the whole group's
/// codes (`8n` bytes) until every lane resolves, so a sparse group —
/// where most lanes are already dead and the few survivors keep the
/// sweep alive to the end — costs more than the `f32` scans it could
/// retire. Only near-full groups, where one pass over the codes can
/// kill several rows at a quarter of their `f32` traffic, clear the
/// bar (value tuned empirically on the `ext-throughput` A/B arms).
const QUANT_MIN_SURVIVORS: usize = 6;

/// Counters describing how much work one query performed — the raw
/// material for the paper's pruning-power discussion (§V-E).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Leaves pushed into the priority queues.
    pub leaves_collected: usize,
    /// Leaves whose series were actually examined.
    pub leaves_refined: usize,
    /// Nodes pruned by a node-level lower bound: whole subtrees at the
    /// root gate, collect-block lanes (individually or by whole-group
    /// abandon), and scalar-DFS nodes on the fallback paths.
    pub nodes_pruned: usize,
    /// Per-series lower-bound evaluations.
    pub series_lbd_checked: usize,
    /// Per-series real-distance evaluations (survived the LBD).
    pub series_refined: usize,
    /// Queues abandoned because their minimum exceeded the bound.
    pub queues_abandoned: usize,
    /// 8-candidate groups swept by the block lower-bound kernel.
    pub block_groups_swept: usize,
    /// Candidate lanes pruned by the block sweep (whole-group abandons
    /// plus individual lanes at or above the bound).
    pub block_lanes_abandoned: usize,
    /// 8-leaf groups swept by the collect-phase node-block kernel.
    pub collect_groups_swept: usize,
    /// 8-node groups swept by the hierarchy-level collect kernel (deep
    /// trees only; each pruned lane retires a whole leaf range).
    pub collect_level_groups_swept: usize,
    /// Leaf-fringe lanes retired wholesale by a pruned ancestor level
    /// lane — leaves the collect phase never had to price individually.
    pub collect_leaves_retired_by_levels: usize,
    /// 8-candidate groups swept by the quantized refine kernel (the
    /// compressed middle tier between the word bound and the exact scan).
    pub quant_groups_swept: usize,
    /// Candidate lanes the quantized tier pruned after the word bound let
    /// them through — exact `f32` scans that never happened.
    pub quant_lanes_killed: usize,
    /// Estimated refine-phase bytes read: word-block bounds swept + quant
    /// codes swept + exact rows scanned. The funnel's bandwidth metric.
    pub refine_bytes: usize,
    /// 1 if this query was abandoned by cooperative cancellation (its
    /// deadline expired or it was shed mid-flight). A cancelled query
    /// produced **no** answer — the other counters describe the partial
    /// work it burned before the checkpoint fired — and it is counted in
    /// [`crate::IndexStats::queries_cancelled`], not `queries_served`.
    pub cancelled: usize,
}

#[derive(Default)]
struct AtomicStats {
    leaves_collected: AtomicUsize,
    leaves_refined: AtomicUsize,
    nodes_pruned: AtomicUsize,
    series_lbd_checked: AtomicUsize,
    series_refined: AtomicUsize,
    queues_abandoned: AtomicUsize,
    block_groups_swept: AtomicUsize,
    block_lanes_abandoned: AtomicUsize,
    collect_groups_swept: AtomicUsize,
    collect_level_groups_swept: AtomicUsize,
    collect_leaves_retired_by_levels: AtomicUsize,
    quant_groups_swept: AtomicUsize,
    quant_lanes_killed: AtomicUsize,
    refine_bytes: AtomicUsize,
}

/// Per-query scratch of the quantized refine tier: the query's codes
/// under the index-wide grid and its reconstruction-error norm. The grid
/// is shared by every leaf, so both are computed at most once per query —
/// lazily, on the first group that engages the tier — and reused across
/// every leaf a worker refines. `err_q == NaN` marks the codes as
/// not-yet-computed.
struct QuantScratch {
    codes: [u8; crate::node::QUANT_REFINE_MAX_LEN],
    err_q: f64,
}

impl QuantScratch {
    fn new() -> Self {
        Self { codes: [0; crate::node::QUANT_REFINE_MAX_LEN], err_q: f64::NAN }
    }
}

impl AtomicStats {
    fn snapshot(&self) -> QueryStats {
        QueryStats {
            leaves_collected: self.leaves_collected.load(Ordering::Relaxed),
            leaves_refined: self.leaves_refined.load(Ordering::Relaxed),
            nodes_pruned: self.nodes_pruned.load(Ordering::Relaxed),
            series_lbd_checked: self.series_lbd_checked.load(Ordering::Relaxed),
            series_refined: self.series_refined.load(Ordering::Relaxed),
            queues_abandoned: self.queues_abandoned.load(Ordering::Relaxed),
            block_groups_swept: self.block_groups_swept.load(Ordering::Relaxed),
            block_lanes_abandoned: self.block_lanes_abandoned.load(Ordering::Relaxed),
            collect_groups_swept: self.collect_groups_swept.load(Ordering::Relaxed),
            collect_level_groups_swept: self.collect_level_groups_swept.load(Ordering::Relaxed),
            collect_leaves_retired_by_levels: self
                .collect_leaves_retired_by_levels
                .load(Ordering::Relaxed),
            quant_groups_swept: self.quant_groups_swept.load(Ordering::Relaxed),
            quant_lanes_killed: self.quant_lanes_killed.load(Ordering::Relaxed),
            refine_bytes: self.refine_bytes.load(Ordering::Relaxed),
            cancelled: 0,
        }
    }
}

/// Has this query's cancellation token fired? (`None` = uncancellable.)
#[inline]
fn fired(cancel: Option<&CancelToken>) -> bool {
    cancel.is_some_and(CancelToken::is_cancelled)
}

impl<S: Summarization> Index<S> {
    /// Exact 1-NN under z-normalized Euclidean distance.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch.
    pub fn nn(&self, query: &[f32]) -> Result<Neighbor, IndexError> {
        Ok(self.knn(query, 1)?[0])
    }

    /// Exact k-NN, best first. Returns `min(k, n_series)` neighbors.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or `k == 0`.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, IndexError> {
        self.knn_with_stats(query, k).map(|(nn, _)| nn)
    }

    /// Exact k-NN written into a caller-owned buffer (cleared first, best
    /// first) — the allocation-free serving form of [`Index::knn`]: with a
    /// warmed-up scratch pool and a buffer that has held `k` results
    /// before, the call performs no heap allocation at all.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or `k == 0`.
    pub fn knn_into(
        &self,
        query: &[f32],
        k: usize,
        out: &mut Vec<Neighbor>,
    ) -> Result<(), IndexError> {
        self.validate(query, k)?;
        let mut scratch = self.scratch();
        let _ = self.knn_on_scratch(&mut scratch, query, k, None);
        out.clear();
        scratch.knn.drain_sorted_into(out);
        Ok(())
    }

    /// Exact k-NN plus per-query work counters.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or `k == 0`.
    pub fn knn_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), IndexError> {
        self.validate(query, k)?;
        let mut scratch = self.scratch();
        let stats = self.knn_on_scratch(&mut scratch, query, k, None);
        let mut out = Vec::with_capacity(k.min(self.n_series()));
        scratch.knn.drain_sorted_into(&mut out);
        Ok((out, stats))
    }

    fn validate(&self, query: &[f32], k: usize) -> Result<(), IndexError> {
        if query.len() != self.series_len {
            return Err(IndexError::BadQuery(format!(
                "query length {} != series length {}",
                query.len(),
                self.series_len
            )));
        }
        if k == 0 {
            return Err(IndexError::BadQuery("k must be at least 1".into()));
        }
        Ok(())
    }

    /// Exact k-NN for a batch of queries (row-major), best first per
    /// query. Queries are distributed across the worker pool — each runs
    /// the serial per-query path, so a batch keeps every lane busy with
    /// zero intra-query synchronization (the FAISS mini-batch model the
    /// paper uses for its flat competitor, applied to the tree). Each
    /// lane checks out one scratch for the whole batch, so the per-query
    /// allocations are limited to the output vectors.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] if the buffer is not a whole
    /// number of series or `k == 0`.
    pub fn knn_batch(&self, queries: &[f32], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        if k == 0 {
            return Err(IndexError::BadQuery("k must be at least 1".into()));
        }
        if queries.len() % self.series_len != 0 {
            return Err(IndexError::BadQuery(format!(
                "query buffer of {} floats is not a multiple of series length {}",
                queries.len(),
                self.series_len
            )));
        }
        let n_queries = queries.len() / self.series_len;
        if n_queries == 0 {
            return Ok(Vec::new());
        }
        let ks = vec![k; n_queries];
        let results: Vec<Mutex<Vec<Neighbor>>> =
            (0..n_queries).map(|_| Mutex::new(Vec::new())).collect();
        self.knn_batch_into(queries, &ks, &results)?;
        Ok(results.into_iter().map(Mutex::into_inner).collect())
    }

    /// Exact k-NN for a batch of queries written into caller-owned output
    /// slots (each cleared first, best first) — the allocation-free
    /// serving form of [`Index::knn_batch`], with a per-query `k`. This
    /// is the engine behind micro-batching front-ends: a coalesced tick
    /// of `m` single-query tickets runs through here on
    /// `min(m, threads())` pool lanes, each lane reusing one pooled
    /// scratch for every query it claims, so a warm tick allocates
    /// nothing.
    ///
    /// Exactly one [`crate::IndexStats::queries_served`] count is
    /// recorded per slot, the same as `m` individual [`Index::knn`]
    /// calls — batch lanes and coalesced ticks are indistinguishable in
    /// the counters.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] if the buffer is not a whole
    /// number of series, `ks`/`outs` lengths don't match the query
    /// count, or any `k == 0`.
    pub fn knn_batch_into(
        &self,
        queries: &[f32],
        ks: &[usize],
        outs: &[Mutex<Vec<Neighbor>>],
    ) -> Result<(), IndexError> {
        self.knn_batch_into_cancel(queries, ks, outs, &[])
    }

    /// [`Index::knn_batch_into`] with per-query cooperative cancellation.
    ///
    /// `cancels` is either empty (no cancellation — identical to
    /// `knn_batch_into`) or one [`CancelToken`] per query. A query whose
    /// token fires — its deadline passed or a canceller called
    /// [`CancelToken::cancel`] — is abandoned at the next checkpoint
    /// (group-sweep granularity inside collect and refine): its output
    /// slot is **not** written, it is **not** counted in
    /// `queries_served` (it lands in `queries_cancelled` instead), and
    /// its partial work is discarded — a query either completes exactly
    /// or produces nothing. Abandonment always latches the token's fired
    /// flag first, so a caller that observes `!is_cancelled_now()` after
    /// this returns knows that slot holds a complete exact answer.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on the same shape violations as
    /// [`Index::knn_batch_into`], or when `cancels` is non-empty but its
    /// length does not match the query count.
    pub fn knn_batch_into_cancel(
        &self,
        queries: &[f32],
        ks: &[usize],
        outs: &[Mutex<Vec<Neighbor>>],
        cancels: &[CancelToken],
    ) -> Result<(), IndexError> {
        let n = self.series_len;
        if queries.len() % n != 0 {
            return Err(IndexError::BadQuery(format!(
                "query buffer of {} floats is not a multiple of series length {}",
                queries.len(),
                n
            )));
        }
        let n_queries = queries.len() / n;
        if ks.len() != n_queries || outs.len() != n_queries {
            return Err(IndexError::BadQuery(format!(
                "{} queries but {} ks and {} output slots",
                n_queries,
                ks.len(),
                outs.len()
            )));
        }
        if !cancels.is_empty() && cancels.len() != n_queries {
            return Err(IndexError::BadQuery(format!(
                "{} queries but {} cancellation tokens",
                n_queries,
                cancels.len()
            )));
        }
        if ks.contains(&0) {
            return Err(IndexError::BadQuery("k must be at least 1".into()));
        }
        if n_queries == 0 {
            return Ok(());
        }
        if n_queries == 1 && cancels.is_empty() {
            // A lone query still gets intra-query parallelism.
            return self.knn_into(queries, ks[0], &mut outs[0].lock());
        }
        if n_queries == 1 {
            // Lone cancellable query: same intra-query-parallel path,
            // with the token threaded through the phases.
            self.validate(queries, ks[0])?;
            let mut scratch = self.scratch();
            let stats = self.knn_on_scratch(&mut scratch, queries, ks[0], Some(&cancels[0]));
            if stats.cancelled == 0 {
                let mut out = outs[0].lock();
                out.clear();
                scratch.knn.drain_sorted_into(&mut out);
            }
            return Ok(());
        }
        if self.pool.threads() == 1 {
            let mut scratch = self.scratch();
            for i in 0..n_queries {
                self.batch_query_on_scratch(&mut scratch, queries, ks, outs, cancels, i);
            }
            return Ok(());
        }
        let next_query = AtomicUsize::new(0);
        // A tick smaller than the pool leaves the excess lanes asleep:
        // per-tick dispatch cost scales with the queries available.
        self.pool.broadcast_limit(n_queries, |_| {
            // One scratch per lane for the whole batch: queues, heaps,
            // context buffers and the DFT executor are reused across
            // every query this lane claims.
            let mut scratch = self.scratch();
            loop {
                let i = next_query.fetch_add(1, Ordering::Relaxed);
                if i >= n_queries {
                    break;
                }
                self.batch_query_on_scratch(&mut scratch, queries, ks, outs, cancels, i);
            }
        });
        Ok(())
    }

    /// One batch lane's handling of query `i`: run the serial per-query
    /// path with its token (if any); on completion write the output slot
    /// and mark the token complete, on cancellation leave the slot
    /// untouched (the caller must treat unmarked slots as unanswered).
    fn batch_query_on_scratch(
        &self,
        scratch: &mut QueryScratch,
        queries: &[f32],
        ks: &[usize],
        outs: &[Mutex<Vec<Neighbor>>],
        cancels: &[CancelToken],
        i: usize,
    ) {
        let n = self.series_len;
        let cancel = cancels.get(i);
        let stats =
            self.knn_serial_on_scratch(scratch, &queries[i * n..(i + 1) * n], ks[i], cancel);
        if stats.cancelled != 0 {
            return;
        }
        let mut out = outs[i].lock();
        out.clear();
        scratch.knn.drain_sorted_into(&mut out);
    }

    /// Normalizes `query` into the scratch and answers it — on the pool
    /// when it has more than one lane, serially otherwise. The neighbors
    /// are left in `scratch.knn`; if `cancel` fired the snapshot has
    /// `cancelled == 1` and the scratch contents must be discarded.
    fn knn_on_scratch(
        &self,
        scratch: &mut QueryScratch,
        query: &[f32],
        k: usize,
        cancel: Option<&CancelToken>,
    ) -> QueryStats {
        if self.pool.threads() == 1 {
            // Serial fast path: identical algorithm without any task
            // dispatch, whose cost would dominate sub-millisecond queries
            // and mask the algorithmic comparison.
            return self.knn_serial_on_scratch(scratch, query, k, cancel);
        }
        if fired(cancel) {
            return self.finish_query(&AtomicStats::default(), true);
        }
        self.prepare_scratch(scratch, query, k);
        let s: &QueryScratch = scratch;
        let ctx = QueryContext::borrowed(&self.query_env, &s.values);
        let stats = AtomicStats::default();

        // --- Phase 1: approximate search seeds the BSF.
        self.approximate_into(&s.q, &s.qword, &ctx, &s.root_lbd, &s.knn);

        // --- Phase 2: collect unpruned leaves into priority queues. Pool
        // lanes claim subtrees off an atomic counter.
        let next_subtree = AtomicUsize::new(0);
        let push_counter = AtomicUsize::new(0);
        self.pool.broadcast(|lane| {
            let mut lane_scratch = s.lanes[lane].lock();
            loop {
                let i = next_subtree.fetch_add(1, Ordering::Relaxed);
                if i >= self.subtrees.len() || fired(cancel) {
                    break;
                }
                debug_assert!(i <= u32::MAX as usize, "subtree index exceeds u32");
                self.collect_subtree(
                    &self.subtrees[i],
                    i as u32,
                    &ctx,
                    &s.root_lbd,
                    &s.knn,
                    &s.queues,
                    &push_counter,
                    &mut lane_scratch,
                    &stats,
                    cancel,
                );
            }
        });

        // --- Phase 3: refine from the queues, one lane per worker slot.
        if !fired(cancel) {
            self.pool.broadcast(|worker| {
                self.refine_from_queues(
                    worker, &s.q, &s.queues, &s.done, &ctx, &s.knn, &stats, cancel,
                );
            });
        }

        self.finish_query(&stats, fired(cancel))
    }

    /// The fully serial query path: same three phases, no synchronization
    /// beyond the (uncontended) shared-state types. Used by 1-lane pools
    /// and by every [`Index::knn_batch`] lane. The neighbors are left in
    /// `scratch.knn`; if `cancel` fired the snapshot has `cancelled == 1`
    /// and the scratch contents must be discarded.
    fn knn_serial_on_scratch(
        &self,
        scratch: &mut QueryScratch,
        query: &[f32],
        k: usize,
        cancel: Option<&CancelToken>,
    ) -> QueryStats {
        if fired(cancel) {
            // Expired before any work: skip even the query transform.
            return self.finish_query(&AtomicStats::default(), true);
        }
        self.prepare_scratch(scratch, query, k);
        let s: &mut QueryScratch = scratch;
        let ctx = QueryContext::borrowed(&self.query_env, &s.values);
        let stats = AtomicStats::default();

        self.approximate_into(&s.q, &s.qword, &ctx, &s.root_lbd, &s.knn);

        let push_counter = AtomicUsize::new(0);
        {
            let mut lane_scratch = s.lanes[0].lock();
            for (i, subtree) in self.subtrees.iter().enumerate() {
                if fired(cancel) {
                    break;
                }
                debug_assert!(i <= u32::MAX as usize, "subtree index exceeds u32");
                self.collect_subtree(
                    subtree,
                    i as u32,
                    &ctx,
                    &s.root_lbd,
                    &s.knn,
                    &s.queues,
                    &push_counter,
                    &mut lane_scratch,
                    &stats,
                    cancel,
                );
            }
        }
        if !fired(cancel) {
            self.refine_from_queues(0, &s.q, &s.queues, &s.done, &ctx, &s.knn, &stats, cancel);
        }
        self.finish_query(&stats, fired(cancel))
    }

    /// Snapshots one query's counters and routes it to the right
    /// index-lifetime audit: `queries_served` for completed queries,
    /// `queries_cancelled` for abandoned ones (whose partial sweep work
    /// is still visible in the returned per-query counters).
    fn finish_query(&self, stats: &AtomicStats, cancelled: bool) -> QueryStats {
        let mut snapshot = stats.snapshot();
        if cancelled {
            snapshot.cancelled = 1;
            self.counters.record_cancelled();
        } else {
            self.record_query_counters(&snapshot);
        }
        snapshot
    }

    /// Fills the scratch's per-query state: normalized query, context
    /// values, query word, root-penalty table, k-NN set and queue flags.
    /// Performs no allocation once the buffers are warm.
    fn prepare_scratch(&self, s: &mut QueryScratch, query: &[f32], k: usize) {
        s.q.clear();
        s.q.extend_from_slice(query);
        sofa_simd::znormalize(&mut s.q);
        self.summarization.query_values_reusing(&s.q, &mut s.transform, &mut s.values);
        s.begin(k);
        let ctx = QueryContext::borrowed(&self.query_env, &s.values);
        // The query word is the quantization of the context's values — no
        // second transform needed.
        ctx.word_into(&mut s.qword);
        s.root_lbd.rebuild(&ctx);
    }

    /// Mirrors one query's sweep counters into the index-lifetime totals
    /// reported by [`crate::IndexStats`].
    fn record_query_counters(&self, stats: &QueryStats) {
        self.counters.record_query();
        self.counters.record_block_sweep(
            stats.block_groups_swept as u64,
            stats.block_lanes_abandoned as u64,
        );
        self.counters.record_collect_sweep(
            stats.collect_groups_swept as u64,
            stats.collect_level_groups_swept as u64,
            stats.collect_leaves_retired_by_levels as u64,
        );
        self.counters.record_quant_sweep(
            stats.quant_groups_swept as u64,
            stats.quant_lanes_killed as u64,
            stats.refine_bytes as u64,
        );
    }

    /// Approximate 1-NN only (the paper's "Approximate Search" stage used
    /// on its own): descend to the query's home leaf and return the best
    /// real distance there. The answer is not guaranteed exact.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch.
    pub fn approximate_nn(&self, query: &[f32]) -> Result<Neighbor, IndexError> {
        self.validate(query, 1)?;
        let mut scratch = self.scratch();
        self.prepare_scratch(&mut scratch, query, 1);
        let s: &QueryScratch = &scratch;
        let ctx = QueryContext::borrowed(&self.query_env, &s.values);
        self.approximate_into(&s.q, &s.qword, &ctx, &s.root_lbd, &s.knn);
        s.knn.sorted().first().copied().ok_or_else(|| IndexError::BadQuery("index is empty".into()))
    }

    /// Approximate search (paper §IV-C): identify the leaf with the
    /// smallest lower-bound distance and seed the BSF from its series.
    ///
    /// The query's home subtree (exact root-key match) is tried first; the
    /// descent then follows the child with the smaller node-level mindist,
    /// which is robust even when individual word bits of the query are
    /// noisy. When no subtree matches the key, the subtree whose root has
    /// the smallest mindist is used instead — evaluated through the
    /// precomputed [`RootLbd`] table, once per subtree (the former
    /// `min_by` recomputed the full scalar `mindist_node` for both sides
    /// of every comparison).
    fn approximate_into(
        &self,
        q: &[f32],
        qword: &[u8],
        ctx: &QueryContext<'_>,
        root_lbd: &RootLbd,
        knn: &KnnSet,
    ) {
        let key = root_key(qword, self.summarization.symbol_bits());
        let subtree = match self.subtrees.binary_search_by_key(&key, |s| s.key) {
            Ok(i) => &self.subtrees[i],
            Err(_) => {
                let mut best = (f32::INFINITY, 0usize);
                for (i, st) in self.subtrees.iter().enumerate() {
                    let d = root_lbd.eval(st.key);
                    if d < best.0 {
                        best = (d, i);
                    }
                }
                &self.subtrees[best.1]
            }
        };
        let mut node = &subtree.nodes[0];
        loop {
            match &node.kind {
                NodeKind::Leaf { rows, pack } => {
                    if let Some(pack) = pack {
                        // Packed leaf: stream the contiguous arena run.
                        let start = pack.start as usize;
                        for i in 0..rows.len() {
                            let bound = knn.bound();
                            let slot = start + i;
                            let d = euclidean_sq_early_abandon(q, self.series_at_slot(slot), bound);
                            if d < bound {
                                knn.offer(Neighbor { row: self.slot_to_row[slot], dist_sq: d });
                            }
                        }
                        return;
                    }
                    for &row in rows {
                        let bound = knn.bound();
                        let d = euclidean_sq_early_abandon(q, self.series(row as usize), bound);
                        // An abandoned distance (> bound) is rejected by
                        // `offer` anyway, so no exactness hazard here.
                        if d < bound {
                            knn.offer(Neighbor { row, dist_sq: d });
                        }
                    }
                    return;
                }
                NodeKind::Inner { left, right, .. } => {
                    let l = &subtree.nodes[*left as usize];
                    let r = &subtree.nodes[*right as usize];
                    let dl = mindist_node(ctx, &l.prefixes, &l.bits);
                    let dr = mindist_node(ctx, &r.prefixes, &r.bits);
                    node = if dl <= dr { l } else { r };
                }
            }
        }
    }

    /// Prices one subtree against the bound and pushes its surviving
    /// leaves into the queues: one [`RootLbd`] XOR evaluation gates the
    /// whole subtree; on deep subtrees a top-down **level sweep** then
    /// prices the top levels of internal nodes 8 per dispatched kernel
    /// call, where each pruned lane retires its entire descendant leaf
    /// range; finally the surviving leaf-fringe lanes are priced 8 per
    /// call (whole groups abandoning mid-sum against the BSF). Lanes left
    /// stale by online splits — and subtrees without a block — fall back
    /// to the scalar DFS.
    #[allow(clippy::too_many_arguments)]
    fn collect_subtree(
        &self,
        subtree: &Subtree,
        subtree_idx: u32,
        ctx: &QueryContext<'_>,
        root_lbd: &RootLbd,
        knn: &KnnSet,
        queues: &[Mutex<LeafQueue>],
        push_counter: &AtomicUsize,
        lane_scratch: &mut LaneScratch,
        stats: &AtomicStats,
        cancel: Option<&CancelToken>,
    ) {
        // The root's 1-bit-per-position label is fully determined by the
        // subtree key: the precomputed XOR-penalty evaluation prices the
        // whole subtree in a few bit operations (this gate runs for every
        // subtree of every query).
        let root_bound = root_lbd.eval(subtree.key);
        if root_bound >= knn.bound() {
            stats.nodes_pruned.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if subtree.nodes.len() == 1 {
            // Single-leaf subtree (wide forests produce thousands): the
            // root evaluation above *is* the leaf's exact bound — its
            // 1-bit prefixes are fully determined by the key — so a
            // block sweep would only re-derive it the slow way.
            if let NodeKind::Leaf { rows, .. } = &subtree.nodes[0].kind {
                if !rows.is_empty() {
                    push_leaf(root_bound, subtree_idx, 0, queues, push_counter);
                    stats.leaves_collected.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
        let Some(cb) = &subtree.collect else {
            let stack = &mut lane_scratch.stack;
            stack.clear();
            stack.push(0);
            self.collect_dfs(
                subtree,
                subtree_idx,
                ctx,
                Some(root_bound),
                knn,
                queues,
                push_counter,
                stack,
                stats,
                cancel,
            );
            return;
        };
        let mut lbs = [0.0f32; BLOCK_LANES];

        // --- Level sweep (deep subtrees only): price the top levels of
        // internal nodes top-down; a pruned lane marks its whole
        // descendant leaf range dead before the fringe is ever touched.
        // Because the fringe is in DFS order, every lane's descendants
        // form the contiguous span `[leaf_lo, leaf_hi)`; at the moment
        // level `d` is swept, a lane's span is either fully alive or was
        // killed wholesale by an ancestor, so checking its first leaf
        // suffices.
        let use_levels = !cb.levels.is_empty();
        if use_levels {
            lane_scratch.reset_dead(cb.node_ids.len());
            let mut retired = 0usize;
            for (lvl, lanes_meta) in cb.levels.iter().enumerate() {
                let block = cb.level_blocks.level(lvl);
                for g in 0..block.n_groups() {
                    // Cancellation checkpoint at group-sweep granularity:
                    // an expired query stops pricing levels mid-subtree.
                    if fired(cancel) {
                        return;
                    }
                    let lanes = block.lanes_in(g);
                    let base = g * BLOCK_LANES;
                    if (0..lanes)
                        .all(|i| lane_scratch.dead[lanes_meta.leaf_spans[base + i].0 as usize])
                    {
                        continue;
                    }
                    stats.collect_level_groups_swept.fetch_add(1, Ordering::Relaxed);
                    let bound = knn.bound();
                    let group_abandoned =
                        mindist_level_block(ctx, &cb.level_blocks, lvl, g, bound, &mut lbs);
                    for (i, &lbd) in lbs.iter().enumerate().take(lanes) {
                        let (lo, hi) = lanes_meta.leaf_spans[base + i];
                        if lane_scratch.dead[lo as usize] {
                            continue;
                        }
                        // On a whole-group abandon every lane's (partial)
                        // sum already exceeded the bound; otherwise
                        // re-read the bound, which tightens as refinement
                        // overlaps.
                        if group_abandoned || lbd >= knn.bound() {
                            stats.nodes_pruned.fetch_add(1, Ordering::Relaxed);
                            retired += (hi - lo) as usize;
                            lane_scratch.mark_dead(lo as usize, hi as usize);
                        }
                    }
                }
            }
            stats.collect_leaves_retired_by_levels.fetch_add(retired, Ordering::Relaxed);
        }

        // --- Leaf-fringe sweep over the survivors.
        let LaneScratch { stack, dead, dead_in_group } = lane_scratch;
        #[allow(clippy::needless_range_loop)] // g also derives the lane base
        for g in 0..cb.block.n_groups() {
            // Cancellation checkpoint at group-sweep granularity.
            if fired(cancel) {
                return;
            }
            let lanes = cb.block.lanes_in(g);
            let base = g * BLOCK_LANES;
            if use_levels && dead_in_group[g] as usize == lanes {
                // The whole group was retired by ancestor prunes: no
                // kernel call, and the skip test is one byte compare.
                continue;
            }
            let bound = knn.bound();
            stats.collect_groups_swept.fetch_add(1, Ordering::Relaxed);
            if mindist_node_block(ctx, &cb.block, g, bound, &mut lbs) {
                // Every lane's (partial) sum exceeded the bound: 8 leaves
                // pruned in one shot.
                stats.nodes_pruned.fetch_add(lanes, Ordering::Relaxed);
                continue;
            }
            for (i, &lbd) in lbs.iter().enumerate().take(lanes) {
                if use_levels && dead[base + i] {
                    continue; // already counted at the ancestor prune
                }
                // Re-read the bound: it tightens as refinement overlaps.
                if lbd >= knn.bound() {
                    stats.nodes_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let id = cb.node_ids[base + i];
                match &subtree.nodes[id as usize].kind {
                    NodeKind::Leaf { rows, .. } => {
                        if rows.is_empty() {
                            continue;
                        }
                        push_leaf(lbd, subtree_idx, id, queues, push_counter);
                        stats.leaves_collected.fetch_add(1, Ordering::Relaxed);
                    }
                    NodeKind::Inner { left, right, .. } => {
                        // Stale lane: this leaf split after the block was
                        // built. Its lane bound (the parent interval)
                        // stayed valid for the descendants; finish them
                        // with a scalar descent.
                        stack.clear();
                        stack.push(*left);
                        stack.push(*right);
                        self.collect_dfs(
                            subtree,
                            subtree_idx,
                            ctx,
                            None,
                            knn,
                            queues,
                            push_counter,
                            stack,
                            stats,
                            cancel,
                        );
                    }
                }
            }
        }
    }

    /// Scalar collect DFS over a pre-seeded `stack` of node ids: the
    /// fallback for subtrees without a collect block and for stale
    /// post-split lanes. `root_bound` supplies node 0's precomputed
    /// [`RootLbd`] evaluation when the DFS starts at the subtree root.
    #[allow(clippy::too_many_arguments)]
    fn collect_dfs(
        &self,
        subtree: &Subtree,
        subtree_idx: u32,
        ctx: &QueryContext<'_>,
        root_bound: Option<f32>,
        knn: &KnnSet,
        queues: &[Mutex<LeafQueue>],
        push_counter: &AtomicUsize,
        stack: &mut Vec<u32>,
        stats: &AtomicStats,
        cancel: Option<&CancelToken>,
    ) {
        while let Some(id) = stack.pop() {
            if fired(cancel) {
                return;
            }
            let node = &subtree.nodes[id as usize];
            let lbd = match (id, root_bound) {
                (0, Some(b)) => b,
                _ => mindist_node(ctx, &node.prefixes, &node.bits),
            };
            if lbd >= knn.bound() {
                stats.nodes_pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match &node.kind {
                NodeKind::Leaf { rows, .. } => {
                    if rows.is_empty() {
                        continue;
                    }
                    push_leaf(lbd, subtree_idx, id, queues, push_counter);
                    stats.leaves_collected.fetch_add(1, Ordering::Relaxed);
                }
                NodeKind::Inner { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
    }

    /// Drains queues starting at `worker`'s own queue: pop the minimum
    /// leaf, abandon the whole queue once its minimum exceeds the bound,
    /// otherwise refine the leaf's series.
    #[allow(clippy::too_many_arguments)]
    fn refine_from_queues(
        &self,
        worker: usize,
        q: &[f32],
        queues: &[Mutex<LeafQueue>],
        done: &[AtomicBool],
        ctx: &QueryContext<'_>,
        knn: &KnnSet,
        stats: &AtomicStats,
        cancel: Option<&CancelToken>,
    ) {
        let nq = queues.len();
        let mut quant = QuantScratch::new();
        loop {
            let mut progressed = false;
            for offset in 0..nq {
                // Cancellation checkpoint per popped leaf: an expired
                // query stops draining its queues mid-refine.
                if fired(cancel) {
                    return;
                }
                let qi = (worker + offset) % nq;
                if done[qi].load(Ordering::Acquire) {
                    continue;
                }
                let entry = queues[qi].lock().pop();
                let Some(Reverse(entry)) = entry else {
                    done[qi].store(true, Ordering::Release);
                    continue;
                };
                progressed = true;
                if entry.lbd >= knn.bound() {
                    // Everything left in this queue has a larger lower
                    // bound: abandon it wholesale (paper §IV-C).
                    done[qi].store(true, Ordering::Release);
                    stats.queues_abandoned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                self.refine_leaf(entry, q, ctx, knn, stats, &mut quant, cancel);
            }
            if !progressed && done.iter().all(|d| d.load(Ordering::Acquire)) {
                break;
            }
            if !progressed {
                // All queues momentarily empty but not flagged: flag them.
                for d in done {
                    d.store(true, Ordering::Release);
                }
            }
        }
    }

    /// Evaluates every series in a leaf: lower bounds first, real
    /// distances only for survivors; both early-abandon on the bound.
    ///
    /// Packed leaves (the bulk-built common case) take the batched path:
    /// the block kernel lower-bounds 8 candidates per call over the SoA
    /// word block, then exact distances stream over the leaf's contiguous
    /// arena run. Leaves touched by online inserts fall back to the
    /// per-row path until [`Index::repack_leaves`] (which the auto-repack
    /// trigger runs for you by default).
    #[allow(clippy::too_many_arguments)]
    fn refine_leaf(
        &self,
        entry: QueueEntry,
        q: &[f32],
        ctx: &QueryContext<'_>,
        knn: &KnnSet,
        stats: &AtomicStats,
        qscratch: &mut QuantScratch,
        cancel: Option<&CancelToken>,
    ) {
        // Chaos hook: `ext-chaos` arms this to panic or stall inside the
        // refine funnel, underneath every batching/serving layer.
        let _ = sofa_exec::failpoint::fire("sofa-index::refine_leaf");
        let subtree = &self.subtrees[entry.subtree as usize];
        let node = &subtree.nodes[entry.node as usize];
        stats.leaves_refined.fetch_add(1, Ordering::Relaxed);
        match &node.kind {
            NodeKind::Leaf { rows, pack: Some(pack) } => {
                self.refine_leaf_packed(pack, rows.len(), q, ctx, knn, stats, qscratch, cancel);
            }
            NodeKind::Leaf { rows, pack: None } => {
                self.refine_leaf_rows(rows, q, ctx, knn, stats);
            }
            NodeKind::Inner { .. } => unreachable!("queues only hold leaves"),
        }
    }

    /// The batched refinement path over a packed leaf — a three-stage
    /// funnel. The word lower bound prices 8 lanes per call over the SoA
    /// bounds; word survivors are re-priced by the scalar-quantized tier
    /// (one integer sweep over 1-byte codes, ~4x less traffic than the
    /// raw series); only lanes both tiers fail to kill pay the exact
    /// `f32` scan. Both cheap tiers are conservative lower bounds, so the
    /// funnel never changes results — only how much memory they cost.
    #[allow(clippy::too_many_arguments)]
    fn refine_leaf_packed(
        &self,
        pack: &LeafPack,
        n_rows: usize,
        q: &[f32],
        ctx: &QueryContext<'_>,
        knn: &KnnSet,
        stats: &AtomicStats,
        qscratch: &mut QuantScratch,
        cancel: Option<&CancelToken>,
    ) {
        let block = &pack.block;
        debug_assert_eq!(block.n(), n_rows);
        let start = pack.start as usize;
        let n = self.series_len;
        let quant = match (&self.quant_grid, pack.quant.as_ref()) {
            (Some(grid), Some(qb)) if self.quant_refine_enabled() => Some((grid, qb)),
            _ => None,
        };
        let mut lbs = [0.0f32; BLOCK_LANES];
        let mut qthr = [0i32; BLOCK_LANES];
        let mut qsums = [0i32; BLOCK_LANES];
        let mut refined = 0usize;
        let mut lanes_abandoned = 0usize;
        let mut quant_groups = 0usize;
        let mut quant_killed = 0usize;
        for g in 0..block.n_groups() {
            // Cancellation checkpoint at group-sweep granularity: the
            // partial `knn` offers already made are discarded wholesale
            // by the caller, so bailing mid-leaf cannot skew exactness.
            if fired(cancel) {
                break;
            }
            let bound = knn.bound();
            let lanes = block.lanes_in(g);
            if mindist_block(ctx, block, g, bound, &mut lbs) {
                // Every lane's (partial) sum exceeded the bound: the
                // whole group is pruned in one shot.
                lanes_abandoned += lanes;
                continue;
            }
            // Quantized middle tier: one integer sweep re-prices the
            // whole group from 1-byte codes before any lane touches the
            // f32 arena. Only engaged when enough lanes survived the word
            // bound: the sweep reads all 8 lanes' codes (`8n` bytes,
            // roughly the traffic of two `f32` row scans), so pricing a
            // lone straggler costs more than the one scan it could save.
            let mut quant_priced = false;
            if let Some((grid, qb)) = quant {
                let survivors = lbs.iter().take(lanes).filter(|&&l| l < bound).count();
                if survivors >= QUANT_MIN_SURVIVORS {
                    if qscratch.err_q.is_nan() {
                        // First engagement anywhere in this query: encode
                        // the query under the index-wide grid. Every
                        // later leaf reuses the same codes.
                        qscratch.err_q = grid.quantize_query(q, &mut qscratch.codes[..n]);
                    }
                    qb.thresholds(g, knn.bound(), qscratch.err_q, &mut qthr);
                    quant_groups += 1;
                    if quant_lower_bound(&qscratch.codes[..n], qb.group_codes(g), &qthr, &mut qsums)
                    {
                        // Every lane's integer sum crossed its threshold:
                        // all word survivors die without touching f32
                        // data (partial sums only grow, so the verdict
                        // is already final).
                        quant_killed += lbs.iter().take(lanes).filter(|&&l| l < bound).count();
                        lanes_abandoned += lbs.iter().take(lanes).filter(|&&l| l >= bound).count();
                        continue;
                    }
                    quant_priced = true;
                }
            }
            for (i, &lbd) in lbs.iter().enumerate().take(lanes) {
                // Re-read the bound: it tightens as lanes refine.
                let bound = knn.bound();
                if lbd >= bound {
                    lanes_abandoned += 1;
                    continue;
                }
                if quant_priced {
                    let (_, qb) = quant.expect("quant_priced implies a quant block");
                    let qlb = qb.lane_bound(qsums[i], qb.group_errs(g)[i], qscratch.err_q);
                    if qlb >= f64::from(bound) {
                        quant_killed += 1;
                        continue;
                    }
                }
                refined += 1;
                let slot = start + g * BLOCK_LANES + i;
                let d = euclidean_sq_early_abandon(q, self.series_at_slot(slot), bound);
                if d < bound {
                    knn.offer(Neighbor { row: self.slot_to_row[slot], dist_sq: d });
                }
            }
        }
        // Refine-traffic estimate: word bounds are BOUNDS_STRIDE f32 per
        // position per group, quant codes 8 bytes per position per group,
        // exact rows n f32 each.
        let bytes = block.n_groups() * block.word_len() * BOUNDS_STRIDE * 4
            + quant_groups * n * BLOCK_LANES
            + refined * n * 4;
        stats.series_lbd_checked.fetch_add(n_rows, Ordering::Relaxed);
        stats.series_refined.fetch_add(refined, Ordering::Relaxed);
        stats.block_groups_swept.fetch_add(block.n_groups(), Ordering::Relaxed);
        stats.block_lanes_abandoned.fetch_add(lanes_abandoned, Ordering::Relaxed);
        stats.quant_groups_swept.fetch_add(quant_groups, Ordering::Relaxed);
        stats.quant_lanes_killed.fetch_add(quant_killed, Ordering::Relaxed);
        stats.refine_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// The per-row fallback path (leaves invalidated by online inserts).
    fn refine_leaf_rows(
        &self,
        rows: &[u32],
        q: &[f32],
        ctx: &QueryContext<'_>,
        knn: &KnnSet,
        stats: &AtomicStats,
    ) {
        let mut refined = 0usize;
        for &row in rows {
            let bound = knn.bound();
            let lbd = mindist_simd(ctx, self.word(row as usize), bound);
            if lbd >= bound {
                continue;
            }
            refined += 1;
            let d = euclidean_sq_early_abandon(q, self.series(row as usize), bound);
            if d < bound {
                knn.offer(Neighbor { row, dist_sq: d });
            }
        }
        stats.series_lbd_checked.fetch_add(rows.len(), Ordering::Relaxed);
        stats.series_refined.fetch_add(refined, Ordering::Relaxed);
        // Per-row traffic: one symbol word per row plus the exact rows.
        let bytes = rows.len() * self.word_len + refined * self.series_len * 4;
        stats.refine_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Pushes one surviving leaf into the queues, round-robin on the shared
/// push counter.
#[inline]
fn push_leaf(
    lbd: f32,
    subtree: u32,
    node: u32,
    queues: &[Mutex<LeafQueue>],
    push_counter: &AtomicUsize,
) {
    let slot = push_counter.fetch_add(1, Ordering::Relaxed) % queues.len();
    queues[slot].lock().push(Reverse(QueueEntry { lbd, subtree, node }));
}
