//! Exact query answering (paper §IV-C, Figure 5 stage 2).
//!
//! The three GEMINI phases — approximate seed, parallel collect, parallel
//! refine — are documented on the crate root. All pruning decisions flow
//! through one [`PruneBound`] policy object (see [`crate::prune`]): the
//! same funnel answers **k-NN** (shrinking k-th-best bound), **range**
//! (fixed epsilon radius, strict pruning, ties at the radius kept), and
//! **max-inner-product** (the Parseval score-to-L2-radius conversion),
//! each exactly. Every surviving candidate pays a SIMD lower-bound check
//! before its exact score is computed, both early-abandoned against the
//! policy's squared-L2 threshold.
//!
//! Filtered queries thread a [`RowFilter`] predicate *into* the funnel:
//! the approximate seed skips rejected rows (so the bound never tightens
//! on an inadmissible row — a correctness requirement, not an
//! optimization), and the refine sweeps AND the per-group live mask into
//! the SIMD kernels ([`mindist_block_masked`] /
//! [`quant_lower_bound_masked`]), where dead lanes price as `+inf` and
//! accelerate whole-group abandons. Live lanes stay bit-identical to the
//! unfiltered sweep across every kernel tier.
//!
//! Both batched sweeps run here. The **collect phase** prices each
//! subtree with one [`RootLbd`] XOR evaluation, then sweeps the subtree's
//! leaves 8 at a time through [`mindist_node_block`] over the
//! build-time-resolved [`crate::CollectBlock`] (whole groups of leaves
//! abandon against the bound mid-sum); the **refine phase** then
//! lower-bounds each surviving leaf's candidates 8 at a time through
//! [`mindist_block`]. Scalar `mindist_node` survives only on the cold
//! paths: the approximate descent and lanes left stale by online splits.
//!
//! Parallel phases execute on the index's persistent
//! [`sofa_exec::ExecPool`] (no per-query thread spawning), and every
//! per-query buffer — context values, query word, queues, k-NN heap,
//! range hit list, DFS stacks — comes from a pooled
//! [`crate::scratch::QueryScratch`], so the steady-state serial path
//! performs zero heap allocations and [`Index::knn_batch`] lanes reuse
//! one scratch per lane across the whole mini-batch.

use crate::bsf::{IpNeighbor, Neighbor};
use crate::filter::RowFilter;
use crate::node::{root_key, LeafPack, NodeKind, Subtree};
use crate::prune::{IpBound, KnnBound, PruneBound, RangeBound};
use crate::scratch::{LaneScratch, LeafQueue, QueryScratch, QueueEntry};
use crate::{Index, IndexError};
use parking_lot::Mutex;
use sofa_exec::CancelToken;
use sofa_simd::{quant_lower_bound, quant_lower_bound_masked, BLOCK_LANES, BOUNDS_STRIDE};
use sofa_summaries::{
    mindist_block, mindist_block_masked, mindist_level_block, mindist_node, mindist_node_block,
    mindist_simd, QueryContext, RootLbd, Summarization,
};
use std::cmp::Reverse;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Minimum word-bound survivors in an 8-lane group before the quantized
/// refine tier prices it. The integer sweep streams the whole group's
/// codes (`8n` bytes) until every lane resolves, so a sparse group —
/// where most lanes are already dead and the few survivors keep the
/// sweep alive to the end — costs more than the `f32` scans it could
/// retire. Only near-full groups, where one pass over the codes can
/// kill several rows at a quarter of their `f32` traffic, clear the
/// bar (value tuned empirically on the `ext-throughput` A/B arms).
const QUANT_MIN_SURVIVORS: usize = 6;

/// Counters describing how much work one query performed — the raw
/// material for the paper's pruning-power discussion (§V-E).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Leaves pushed into the priority queues.
    pub leaves_collected: usize,
    /// Leaves whose series were actually examined.
    pub leaves_refined: usize,
    /// Nodes pruned by a node-level lower bound: whole subtrees at the
    /// root gate, collect-block lanes (individually or by whole-group
    /// abandon), and scalar-DFS nodes on the fallback paths.
    pub nodes_pruned: usize,
    /// Per-series lower-bound evaluations (predicate-rejected rows are
    /// never evaluated and excluded here).
    pub series_lbd_checked: usize,
    /// Per-series exact evaluations (survived the LBD).
    pub series_refined: usize,
    /// Queues abandoned because their minimum exceeded the bound.
    pub queues_abandoned: usize,
    /// 8-candidate groups swept by the block lower-bound kernel.
    pub block_groups_swept: usize,
    /// Candidate lanes pruned by the block sweep (whole-group abandons
    /// plus individual lanes at or above the bound).
    pub block_lanes_abandoned: usize,
    /// 8-leaf groups swept by the collect-phase node-block kernel.
    pub collect_groups_swept: usize,
    /// 8-node groups swept by the hierarchy-level collect kernel (deep
    /// trees only; each pruned lane retires a whole leaf range).
    pub collect_level_groups_swept: usize,
    /// Leaf-fringe lanes retired wholesale by a pruned ancestor level
    /// lane — leaves the collect phase never had to price individually.
    pub collect_leaves_retired_by_levels: usize,
    /// 8-candidate groups swept by the quantized refine kernel (the
    /// compressed middle tier between the word bound and the exact scan).
    pub quant_groups_swept: usize,
    /// Candidate lanes the quantized tier pruned after the word bound let
    /// them through — exact `f32` scans that never happened.
    pub quant_lanes_killed: usize,
    /// Refine-phase candidate lanes a [`RowFilter`] predicate rejected
    /// before any bound was evaluated (each masked lane is counted once,
    /// whether its group was swept masked or skipped outright). Zero for
    /// unfiltered queries.
    pub predicate_lanes_masked: usize,
    /// Rows a range query returned (`d² <= r²`). Zero for k-NN/IP
    /// queries, whose answer count is just `min(k, candidates)`.
    pub range_hits: usize,
    /// Estimated refine-phase bytes read: word-block bounds swept + quant
    /// codes swept + exact rows scanned. The funnel's bandwidth metric.
    pub refine_bytes: usize,
    /// 1 if this query was abandoned by cooperative cancellation (its
    /// deadline expired or it was shed mid-flight). A cancelled query
    /// produced **no** answer — the other counters describe the partial
    /// work it burned before the checkpoint fired — and it is counted in
    /// [`crate::IndexStats::queries_cancelled`], not `queries_served`.
    pub cancelled: usize,
}

#[derive(Default)]
struct AtomicStats {
    leaves_collected: AtomicUsize,
    leaves_refined: AtomicUsize,
    nodes_pruned: AtomicUsize,
    series_lbd_checked: AtomicUsize,
    series_refined: AtomicUsize,
    queues_abandoned: AtomicUsize,
    block_groups_swept: AtomicUsize,
    block_lanes_abandoned: AtomicUsize,
    collect_groups_swept: AtomicUsize,
    collect_level_groups_swept: AtomicUsize,
    collect_leaves_retired_by_levels: AtomicUsize,
    quant_groups_swept: AtomicUsize,
    quant_lanes_killed: AtomicUsize,
    predicate_lanes_masked: AtomicUsize,
    refine_bytes: AtomicUsize,
}

/// Per-query scratch of the quantized refine tier: the query's codes
/// under the index-wide grid and its reconstruction-error norm. The grid
/// is shared by every leaf, so both are computed at most once per query —
/// lazily, on the first group that engages the tier — and reused across
/// every leaf a worker refines. `err_q == NaN` marks the codes as
/// not-yet-computed.
struct QuantScratch {
    codes: [u8; crate::node::QUANT_REFINE_MAX_LEN],
    err_q: f64,
}

impl QuantScratch {
    fn new() -> Self {
        Self { codes: [0; crate::node::QUANT_REFINE_MAX_LEN], err_q: f64::NAN }
    }
}

impl AtomicStats {
    fn snapshot(&self) -> QueryStats {
        QueryStats {
            leaves_collected: self.leaves_collected.load(Ordering::Relaxed),
            leaves_refined: self.leaves_refined.load(Ordering::Relaxed),
            nodes_pruned: self.nodes_pruned.load(Ordering::Relaxed),
            series_lbd_checked: self.series_lbd_checked.load(Ordering::Relaxed),
            series_refined: self.series_refined.load(Ordering::Relaxed),
            queues_abandoned: self.queues_abandoned.load(Ordering::Relaxed),
            block_groups_swept: self.block_groups_swept.load(Ordering::Relaxed),
            block_lanes_abandoned: self.block_lanes_abandoned.load(Ordering::Relaxed),
            collect_groups_swept: self.collect_groups_swept.load(Ordering::Relaxed),
            collect_level_groups_swept: self.collect_level_groups_swept.load(Ordering::Relaxed),
            collect_leaves_retired_by_levels: self
                .collect_leaves_retired_by_levels
                .load(Ordering::Relaxed),
            quant_groups_swept: self.quant_groups_swept.load(Ordering::Relaxed),
            quant_lanes_killed: self.quant_lanes_killed.load(Ordering::Relaxed),
            predicate_lanes_masked: self.predicate_lanes_masked.load(Ordering::Relaxed),
            range_hits: 0,
            refine_bytes: self.refine_bytes.load(Ordering::Relaxed),
            cancelled: 0,
        }
    }
}

/// One ticket's query type, for mixed batches ([`Index::query_batch_into_cancel`])
/// and serving front-ends that coalesce heterogeneous tickets into one
/// tick.
///
/// Results always travel as [`Neighbor`] vectors, best first:
///
/// * `Knn`/`KnnFiltered` — `dist_sq` is the squared z-normalized
///   Euclidean distance.
/// * `Range` — every row with `dist_sq <= r_sq` (ties at the radius
///   included), sorted by `(dist_sq, row)`.
/// * `Ip` — `dist_sq` carries the **score** `2n - q·x` (ascending score
///   = descending inner product); convert with
///   [`sofa_summaries::ip_from_score`] or use [`Index::knn_ip`], which
///   recomputes exact dot products for the answer rows.
#[derive(Clone, Debug)]
pub enum QueryKind {
    /// Exact k-nearest-neighbors under squared Euclidean distance.
    Knn {
        /// How many neighbors to return.
        k: usize,
    },
    /// k-NN restricted to the rows a [`RowFilter`] admits — exactly the
    /// result of running k-NN over the admitted subset alone.
    KnnFiltered {
        /// How many neighbors to return.
        k: usize,
        /// The row predicate (must cover exactly `n_series` rows).
        filter: Arc<RowFilter>,
    },
    /// Every row within squared radius `r_sq` of the query.
    Range {
        /// Squared inclusion radius (finite, non-negative).
        r_sq: f32,
    },
    /// Top-k rows by inner product with the z-normalized query.
    Ip {
        /// How many rows to return.
        k: usize,
    },
}

impl QueryKind {
    /// The internal execution plan this kind resolves to.
    fn exec(&self) -> QueryExec<'_> {
        match self {
            QueryKind::Knn { k } => QueryExec::Knn { k: *k, filter: None },
            QueryKind::KnnFiltered { k, filter } => QueryExec::Knn { k: *k, filter: Some(filter) },
            QueryKind::Range { r_sq } => QueryExec::Range { r_sq: *r_sq, filter: None },
            QueryKind::Ip { k } => QueryExec::Ip { k: *k, filter: None },
        }
    }
}

/// The resolved execution plan of one query: which [`PruneBound`] drives
/// the funnel, plus the optional row predicate.
#[derive(Copy, Clone)]
enum QueryExec<'a> {
    Knn { k: usize, filter: Option<&'a RowFilter> },
    Range { r_sq: f32, filter: Option<&'a RowFilter> },
    Ip { k: usize, filter: Option<&'a RowFilter> },
}

impl QueryExec<'_> {
    /// The `k` the scratch's result set is armed with (range queries
    /// don't use the k-NN set; 1 keeps the reset cheap).
    fn prep_k(&self) -> usize {
        match self {
            QueryExec::Knn { k, .. } | QueryExec::Ip { k, .. } => *k,
            QueryExec::Range { .. } => 1,
        }
    }
}

/// Where a batch's per-query kinds come from: the uniform k-NN fast path
/// (no per-query allocation, the historical `knn_batch_into` shape) or a
/// fully mixed [`QueryKind`] slice.
#[derive(Copy, Clone)]
enum KindSource<'a> {
    UniformKnn(&'a [usize]),
    PerQuery(&'a [QueryKind]),
}

impl<'a> KindSource<'a> {
    fn exec(&self, i: usize) -> QueryExec<'a> {
        match self {
            KindSource::UniformKnn(ks) => QueryExec::Knn { k: ks[i], filter: None },
            KindSource::PerQuery(kinds) => kinds[i].exec(),
        }
    }
}

/// Has this query's cancellation token fired? (`None` = uncancellable.)
#[inline]
fn fired(cancel: Option<&CancelToken>) -> bool {
    cancel.is_some_and(CancelToken::is_cancelled)
}

impl<S: Summarization> Index<S> {
    /// Exact 1-NN under z-normalized Euclidean distance.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch.
    pub fn nn(&self, query: &[f32]) -> Result<Neighbor, IndexError> {
        Ok(self.knn(query, 1)?[0])
    }

    /// Exact k-NN, best first. Returns `min(k, n_series)` neighbors.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or `k == 0`.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, IndexError> {
        self.knn_with_stats(query, k).map(|(nn, _)| nn)
    }

    /// Exact k-NN written into a caller-owned buffer (cleared first, best
    /// first) — the allocation-free serving form of [`Index::knn`]: with a
    /// warmed-up scratch pool and a buffer that has held `k` results
    /// before, the call performs no heap allocation at all.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or `k == 0`.
    pub fn knn_into(
        &self,
        query: &[f32],
        k: usize,
        out: &mut Vec<Neighbor>,
    ) -> Result<(), IndexError> {
        self.validate(query, k)?;
        let mut scratch = self.scratch();
        let exec = QueryExec::Knn { k, filter: None };
        let _ = self.query_on_scratch(&mut scratch, query, exec, None, self.pool.threads() == 1);
        self.drain_exec_results(&mut scratch, &exec, out);
        Ok(())
    }

    /// Exact k-NN plus per-query work counters.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or `k == 0`.
    pub fn knn_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), IndexError> {
        self.validate(query, k)?;
        let mut scratch = self.scratch();
        let exec = QueryExec::Knn { k, filter: None };
        let stats =
            self.query_on_scratch(&mut scratch, query, exec, None, self.pool.threads() == 1);
        let mut out = Vec::with_capacity(k.min(self.n_series()));
        self.drain_exec_results(&mut scratch, &exec, &mut out);
        Ok((out, stats))
    }

    /// Exact k-NN over the rows `filter` admits, best first — exactly the
    /// answer k-NN would give if the index held only the admitted subset.
    ///
    /// The predicate is enforced *inside* the pruning funnel: rejected
    /// rows never seed or tighten the best-so-far, and refine-phase lane
    /// groups AND the bitmap into the SIMD sweeps (dead lanes price as
    /// `+inf` and speed up whole-group abandons) — not by post-filtering
    /// a wider answer, which would be both wrong at the bound and slower.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch, `k == 0`,
    /// or a filter whose row count differs from the index's.
    pub fn knn_filtered(
        &self,
        query: &[f32],
        k: usize,
        filter: &RowFilter,
    ) -> Result<Vec<Neighbor>, IndexError> {
        self.knn_filtered_with_stats(query, k, filter).map(|(nn, _)| nn)
    }

    /// [`Index::knn_filtered`] plus per-query work counters (see
    /// [`QueryStats::predicate_lanes_masked`]).
    ///
    /// # Errors
    /// Same conditions as [`Index::knn_filtered`].
    pub fn knn_filtered_with_stats(
        &self,
        query: &[f32],
        k: usize,
        filter: &RowFilter,
    ) -> Result<(Vec<Neighbor>, QueryStats), IndexError> {
        self.validate(query, k)?;
        self.validate_filter(filter)?;
        let mut scratch = self.scratch();
        let exec = QueryExec::Knn { k, filter: Some(filter) };
        let stats =
            self.query_on_scratch(&mut scratch, query, exec, None, self.pool.threads() == 1);
        let mut out = Vec::with_capacity(k.min(filter.count()));
        self.drain_exec_results(&mut scratch, &exec, &mut out);
        Ok((out, stats))
    }

    /// [`Index::knn_filtered`] into a caller-owned buffer (cleared first).
    ///
    /// # Errors
    /// Same conditions as [`Index::knn_filtered`].
    pub fn knn_filtered_into(
        &self,
        query: &[f32],
        k: usize,
        filter: &RowFilter,
        out: &mut Vec<Neighbor>,
    ) -> Result<(), IndexError> {
        self.validate(query, k)?;
        self.validate_filter(filter)?;
        let mut scratch = self.scratch();
        let exec = QueryExec::Knn { k, filter: Some(filter) };
        let _ = self.query_on_scratch(&mut scratch, query, exec, None, self.pool.threads() == 1);
        self.drain_exec_results(&mut scratch, &exec, out);
        Ok(())
    }

    /// Exact range search: every row with squared distance `<= r_sq`,
    /// sorted by `(dist_sq, row)`. Ties exactly at the radius are
    /// **included** — all pruning for this query type is strict.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or a
    /// non-finite/negative radius.
    pub fn range(&self, query: &[f32], r_sq: f32) -> Result<Vec<Neighbor>, IndexError> {
        self.range_with_stats(query, r_sq).map(|(hits, _)| hits)
    }

    /// [`Index::range`] plus per-query work counters (see
    /// [`QueryStats::range_hits`]).
    ///
    /// # Errors
    /// Same conditions as [`Index::range`].
    pub fn range_with_stats(
        &self,
        query: &[f32],
        r_sq: f32,
    ) -> Result<(Vec<Neighbor>, QueryStats), IndexError> {
        self.validate(query, 1)?;
        Self::validate_radius(r_sq)?;
        let mut scratch = self.scratch();
        let exec = QueryExec::Range { r_sq, filter: None };
        let stats =
            self.query_on_scratch(&mut scratch, query, exec, None, self.pool.threads() == 1);
        let mut out = Vec::new();
        self.drain_exec_results(&mut scratch, &exec, &mut out);
        Ok((out, stats))
    }

    /// [`Index::range`] into a caller-owned buffer (cleared first) — the
    /// allocation-free serving form.
    ///
    /// # Errors
    /// Same conditions as [`Index::range`].
    pub fn range_into(
        &self,
        query: &[f32],
        r_sq: f32,
        out: &mut Vec<Neighbor>,
    ) -> Result<(), IndexError> {
        self.validate(query, 1)?;
        Self::validate_radius(r_sq)?;
        let mut scratch = self.scratch();
        let exec = QueryExec::Range { r_sq, filter: None };
        let _ = self.query_on_scratch(&mut scratch, query, exec, None, self.pool.threads() == 1);
        self.drain_exec_results(&mut scratch, &exec, out);
        Ok(())
    }

    /// The row maximizing the inner product `q·x` with the z-normalized
    /// query (exact; ties broken by lowest row).
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or an empty
    /// index.
    pub fn nn_ip(&self, query: &[f32]) -> Result<IpNeighbor, IndexError> {
        self.knn_ip(query, 1)?
            .first()
            .copied()
            .ok_or_else(|| IndexError::BadQuery("index is empty".into()))
    }

    /// Exact top-k rows by inner product with the z-normalized query,
    /// best (largest dot) first.
    ///
    /// Internally this runs through the same L2 pruning funnel as k-NN:
    /// maximizing `q·x` over z-normalized rows is minimizing the Parseval
    /// score `2n - q·x`, and the current k-th-best score converts to a
    /// squared-L2 radius every existing `mindist` bound prunes against
    /// (see `sofa-summaries`'s `ip_l2_radius` and its soundness property
    /// test). The returned `ip` values are exact dot products recomputed
    /// per answer row.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or `k == 0`.
    pub fn knn_ip(&self, query: &[f32], k: usize) -> Result<Vec<IpNeighbor>, IndexError> {
        self.validate(query, k)?;
        let mut scratch = self.scratch();
        let exec = QueryExec::Ip { k, filter: None };
        let _ = self.query_on_scratch(&mut scratch, query, exec, None, self.pool.threads() == 1);
        let mut raw = Vec::with_capacity(k.min(self.n_series()));
        scratch.knn.drain_sorted_into(&mut raw);
        // Scores sort ascending = best inner product first. Report true
        // dot products (the score transport is exact in-process, but the
        // dot is the quantity the caller asked for).
        Ok(raw
            .into_iter()
            .map(|nb| IpNeighbor {
                row: nb.row,
                ip: sofa_simd::dot(&scratch.q, self.series(nb.row as usize)),
            })
            .collect())
    }

    fn validate(&self, query: &[f32], k: usize) -> Result<(), IndexError> {
        if query.len() != self.series_len {
            return Err(IndexError::BadQuery(format!(
                "query length {} != series length {}",
                query.len(),
                self.series_len
            )));
        }
        if k == 0 {
            return Err(IndexError::BadQuery("k must be at least 1".into()));
        }
        Ok(())
    }

    fn validate_filter(&self, filter: &RowFilter) -> Result<(), IndexError> {
        if filter.len() != self.n_series() {
            return Err(IndexError::BadQuery(format!(
                "filter covers {} rows but the index holds {}",
                filter.len(),
                self.n_series()
            )));
        }
        Ok(())
    }

    fn validate_radius(r_sq: f32) -> Result<(), IndexError> {
        if !(r_sq.is_finite() && r_sq >= 0.0) {
            return Err(IndexError::BadQuery(format!(
                "range radius² must be finite and non-negative, got {r_sq}"
            )));
        }
        Ok(())
    }

    fn validate_kind(&self, kind: &QueryKind) -> Result<(), IndexError> {
        match kind {
            QueryKind::Knn { k } | QueryKind::Ip { k } => {
                if *k == 0 {
                    return Err(IndexError::BadQuery("k must be at least 1".into()));
                }
            }
            QueryKind::KnnFiltered { k, filter } => {
                if *k == 0 {
                    return Err(IndexError::BadQuery("k must be at least 1".into()));
                }
                self.validate_filter(filter)?;
            }
            QueryKind::Range { r_sq } => Self::validate_radius(*r_sq)?,
        }
        Ok(())
    }

    /// Exact k-NN for a batch of queries (row-major), best first per
    /// query. Queries are distributed across the worker pool — each runs
    /// the serial per-query path, so a batch keeps every lane busy with
    /// zero intra-query synchronization (the FAISS mini-batch model the
    /// paper uses for its flat competitor, applied to the tree). Each
    /// lane checks out one scratch for the whole batch, so the per-query
    /// allocations are limited to the output vectors.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] if the buffer is not a whole
    /// number of series or `k == 0`.
    pub fn knn_batch(&self, queries: &[f32], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        if k == 0 {
            return Err(IndexError::BadQuery("k must be at least 1".into()));
        }
        if queries.len() % self.series_len != 0 {
            return Err(IndexError::BadQuery(format!(
                "query buffer of {} floats is not a multiple of series length {}",
                queries.len(),
                self.series_len
            )));
        }
        let n_queries = queries.len() / self.series_len;
        if n_queries == 0 {
            return Ok(Vec::new());
        }
        let ks = vec![k; n_queries];
        let results: Vec<Mutex<Vec<Neighbor>>> =
            (0..n_queries).map(|_| Mutex::new(Vec::new())).collect();
        self.knn_batch_into(queries, &ks, &results)?;
        Ok(results.into_iter().map(Mutex::into_inner).collect())
    }

    /// Exact k-NN for a batch of queries written into caller-owned output
    /// slots (each cleared first, best first) — the allocation-free
    /// serving form of [`Index::knn_batch`], with a per-query `k`. This
    /// is the engine behind micro-batching front-ends: a coalesced tick
    /// of `m` single-query tickets runs through here on
    /// `min(m, threads())` pool lanes, each lane reusing one pooled
    /// scratch for every query it claims, so a warm tick allocates
    /// nothing.
    ///
    /// Exactly one [`crate::IndexStats::queries_served`] count is
    /// recorded per slot, the same as `m` individual [`Index::knn`]
    /// calls — batch lanes and coalesced ticks are indistinguishable in
    /// the counters.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] if the buffer is not a whole
    /// number of series, `ks`/`outs` lengths don't match the query
    /// count, or any `k == 0`.
    pub fn knn_batch_into(
        &self,
        queries: &[f32],
        ks: &[usize],
        outs: &[Mutex<Vec<Neighbor>>],
    ) -> Result<(), IndexError> {
        self.knn_batch_into_cancel(queries, ks, outs, &[])
    }

    /// [`Index::knn_batch_into`] with per-query cooperative cancellation.
    ///
    /// `cancels` is either empty (no cancellation — identical to
    /// `knn_batch_into`) or one [`CancelToken`] per query. A query whose
    /// token fires — its deadline passed or a canceller called
    /// [`CancelToken::cancel`] — is abandoned at the next checkpoint
    /// (group-sweep granularity inside collect and refine): its output
    /// slot is **not** written, it is **not** counted in
    /// `queries_served` (it lands in `queries_cancelled` instead), and
    /// its partial work is discarded — a query either completes exactly
    /// or produces nothing. Abandonment always latches the token's fired
    /// flag first, so a caller that observes `!is_cancelled_now()` after
    /// this returns knows that slot holds a complete exact answer.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on the same shape violations as
    /// [`Index::knn_batch_into`], or when `cancels` is non-empty but its
    /// length does not match the query count.
    pub fn knn_batch_into_cancel(
        &self,
        queries: &[f32],
        ks: &[usize],
        outs: &[Mutex<Vec<Neighbor>>],
        cancels: &[CancelToken],
    ) -> Result<(), IndexError> {
        let n_queries = self.validate_batch_shape(queries, ks.len(), outs.len(), cancels)?;
        if ks.contains(&0) {
            return Err(IndexError::BadQuery("k must be at least 1".into()));
        }
        if n_queries == 0 {
            return Ok(());
        }
        self.batch_dispatch(queries, KindSource::UniformKnn(ks), outs, cancels)
    }

    /// A mixed batch: per-query [`QueryKind`] (k-NN, filtered k-NN,
    /// range, inner-product) answered through the same coalesced
    /// machinery as [`Index::knn_batch_into_cancel`] — one pool pass, one
    /// scratch per lane, per-query cancellation. See [`QueryKind`] for
    /// how each kind's results are encoded in its output slot.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on shape violations (buffer not a
    /// whole number of series; `kinds`/`outs`/non-empty `cancels` length
    /// mismatches) or an invalid kind (`k == 0`, bad radius, filter row
    /// count mismatch).
    pub fn query_batch_into_cancel(
        &self,
        queries: &[f32],
        kinds: &[QueryKind],
        outs: &[Mutex<Vec<Neighbor>>],
        cancels: &[CancelToken],
    ) -> Result<(), IndexError> {
        let n_queries = self.validate_batch_shape(queries, kinds.len(), outs.len(), cancels)?;
        for kind in kinds {
            self.validate_kind(kind)?;
        }
        if n_queries == 0 {
            return Ok(());
        }
        self.batch_dispatch(queries, KindSource::PerQuery(kinds), outs, cancels)
    }

    /// Shared shape validation of the batch entry points. Returns the
    /// query count.
    fn validate_batch_shape(
        &self,
        queries: &[f32],
        n_kinds: usize,
        n_outs: usize,
        cancels: &[CancelToken],
    ) -> Result<usize, IndexError> {
        let n = self.series_len;
        if queries.len() % n != 0 {
            return Err(IndexError::BadQuery(format!(
                "query buffer of {} floats is not a multiple of series length {}",
                queries.len(),
                n
            )));
        }
        let n_queries = queries.len() / n;
        if n_kinds != n_queries || n_outs != n_queries {
            return Err(IndexError::BadQuery(format!(
                "{n_queries} queries but {n_kinds} kinds/ks and {n_outs} output slots"
            )));
        }
        if !cancels.is_empty() && cancels.len() != n_queries {
            return Err(IndexError::BadQuery(format!(
                "{} queries but {} cancellation tokens",
                n_queries,
                cancels.len()
            )));
        }
        Ok(n_queries)
    }

    /// Validated batch execution: a lone query keeps intra-query
    /// parallelism; otherwise pool lanes claim queries off an atomic
    /// counter and run the serial per-query path, one pooled scratch per
    /// lane for the whole batch.
    fn batch_dispatch(
        &self,
        queries: &[f32],
        kinds: KindSource<'_>,
        outs: &[Mutex<Vec<Neighbor>>],
        cancels: &[CancelToken],
    ) -> Result<(), IndexError> {
        let n_queries = outs.len();
        if n_queries == 1 {
            // A lone query still gets intra-query parallelism, with the
            // token (if any) threaded through the phases.
            let exec = kinds.exec(0);
            let mut scratch = self.scratch();
            let stats = self.query_on_scratch(
                &mut scratch,
                queries,
                exec,
                cancels.first(),
                self.pool.threads() == 1,
            );
            if stats.cancelled == 0 {
                let mut out = outs[0].lock();
                self.drain_exec_results(&mut scratch, &exec, &mut out);
            }
            return Ok(());
        }
        if self.pool.threads() == 1 {
            let mut scratch = self.scratch();
            for i in 0..n_queries {
                self.batch_query_on_scratch(&mut scratch, queries, kinds, outs, cancels, i);
            }
            return Ok(());
        }
        let next_query = AtomicUsize::new(0);
        // A tick smaller than the pool leaves the excess lanes asleep:
        // per-tick dispatch cost scales with the queries available.
        self.pool.broadcast_limit(n_queries, |_| {
            // One scratch per lane for the whole batch: queues, heaps,
            // context buffers and the DFT executor are reused across
            // every query this lane claims.
            let mut scratch = self.scratch();
            loop {
                let i = next_query.fetch_add(1, Ordering::Relaxed);
                if i >= n_queries {
                    break;
                }
                self.batch_query_on_scratch(&mut scratch, queries, kinds, outs, cancels, i);
            }
        });
        Ok(())
    }

    /// One batch lane's handling of query `i`: run the serial per-query
    /// path with its token (if any); on completion write the output slot
    /// and mark the token complete, on cancellation leave the slot
    /// untouched (the caller must treat unmarked slots as unanswered).
    fn batch_query_on_scratch(
        &self,
        scratch: &mut QueryScratch,
        queries: &[f32],
        kinds: KindSource<'_>,
        outs: &[Mutex<Vec<Neighbor>>],
        cancels: &[CancelToken],
        i: usize,
    ) {
        let n = self.series_len;
        let exec = kinds.exec(i);
        let stats = self.query_on_scratch(
            scratch,
            &queries[i * n..(i + 1) * n],
            exec,
            cancels.get(i),
            true,
        );
        if stats.cancelled != 0 {
            return;
        }
        let mut out = outs[i].lock();
        self.drain_exec_results(scratch, &exec, &mut out);
    }

    /// Moves one answered query's results out of the scratch into `out`
    /// (cleared first, best first): the k-NN/IP set for bounded kinds,
    /// the sorted hit list for range.
    fn drain_exec_results(
        &self,
        scratch: &mut QueryScratch,
        exec: &QueryExec<'_>,
        out: &mut Vec<Neighbor>,
    ) {
        out.clear();
        match exec {
            QueryExec::Range { .. } => {
                let hits = scratch.range.get_mut();
                // Deterministic output independent of worker interleaving.
                hits.sort_unstable();
                out.append(hits);
            }
            QueryExec::Knn { .. } | QueryExec::Ip { .. } => {
                scratch.knn.drain_sorted_into(out);
            }
        }
    }

    /// Normalizes `query` into the scratch and answers it under `exec`'s
    /// plan — on the pool when `serial` is false, inline otherwise. The
    /// results are left in the scratch (`knn` or `range` per the plan);
    /// if `cancel` fired the snapshot has `cancelled == 1` and the
    /// scratch contents must be discarded.
    fn query_on_scratch(
        &self,
        scratch: &mut QueryScratch,
        query: &[f32],
        exec: QueryExec<'_>,
        cancel: Option<&CancelToken>,
        serial: bool,
    ) -> QueryStats {
        if fired(cancel) {
            // Expired before any work: skip even the query transform.
            return self.finish_query(&AtomicStats::default(), true);
        }
        self.prepare_scratch(scratch, query, exec.prep_k());
        let s: &QueryScratch = scratch;
        let ctx = QueryContext::borrowed(&self.query_env, &s.values);
        let stats = AtomicStats::default();
        match exec {
            QueryExec::Knn { filter, .. } => {
                let pb = KnnBound { set: &s.knn };
                self.drive(s, &ctx, &pb, filter, true, serial, &stats, cancel);
            }
            QueryExec::Range { r_sq, filter } => {
                // No approximate seed: the radius is fixed (seeding can't
                // tighten it), and the hit list has no row dedup, so
                // scoring the home leaf twice would double-report.
                let pb = RangeBound { r_sq, hits: &s.range };
                self.drive(s, &ctx, &pb, filter, false, serial, &stats, cancel);
            }
            QueryExec::Ip { filter, .. } => {
                let pb = IpBound { set: &s.knn, n: self.series_len };
                self.drive(s, &ctx, &pb, filter, true, serial, &stats, cancel);
            }
        }
        let mut snapshot = self.finish_query(&stats, fired(cancel));
        if snapshot.cancelled == 0 {
            if let QueryExec::Range { .. } = exec {
                snapshot.range_hits = s.range.lock().len();
            }
        }
        snapshot
    }

    /// Runs the three funnel phases under one [`PruneBound`] policy: the
    /// optional approximate seed, then collect, then refine — serially
    /// inline or with pool lanes claiming subtrees/queues.
    #[allow(clippy::too_many_arguments)]
    fn drive<B: PruneBound>(
        &self,
        s: &QueryScratch,
        ctx: &QueryContext<'_>,
        pb: &B,
        filter: Option<&RowFilter>,
        seed: bool,
        serial: bool,
        stats: &AtomicStats,
        cancel: Option<&CancelToken>,
    ) {
        // --- Phase 1: approximate search seeds the bound (skipped for
        // range queries, whose bound is fixed).
        if seed {
            self.approximate_into(&s.q, &s.qword, ctx, &s.root_lbd, pb, filter);
        }

        // --- Phase 2: collect unpruned leaves into priority queues.
        let push_counter = AtomicUsize::new(0);
        if serial {
            {
                let mut lane_scratch = s.lanes[0].lock();
                for (i, subtree) in self.subtrees.iter().enumerate() {
                    if fired(cancel) {
                        break;
                    }
                    debug_assert!(i <= u32::MAX as usize, "subtree index exceeds u32");
                    self.collect_subtree(
                        subtree,
                        i as u32,
                        ctx,
                        &s.root_lbd,
                        pb,
                        &s.queues,
                        &push_counter,
                        &mut lane_scratch,
                        stats,
                        cancel,
                    );
                }
            }
            if !fired(cancel) {
                self.refine_from_queues(
                    0, &s.q, &s.queues, &s.done, ctx, pb, filter, stats, cancel,
                );
            }
            return;
        }
        // Pool lanes claim subtrees off an atomic counter.
        let next_subtree = AtomicUsize::new(0);
        self.pool.broadcast(|lane| {
            let mut lane_scratch = s.lanes[lane].lock();
            loop {
                let i = next_subtree.fetch_add(1, Ordering::Relaxed);
                if i >= self.subtrees.len() || fired(cancel) {
                    break;
                }
                debug_assert!(i <= u32::MAX as usize, "subtree index exceeds u32");
                self.collect_subtree(
                    &self.subtrees[i],
                    i as u32,
                    ctx,
                    &s.root_lbd,
                    pb,
                    &s.queues,
                    &push_counter,
                    &mut lane_scratch,
                    stats,
                    cancel,
                );
            }
        });

        // --- Phase 3: refine from the queues, one lane per worker slot.
        if !fired(cancel) {
            self.pool.broadcast(|worker| {
                self.refine_from_queues(
                    worker, &s.q, &s.queues, &s.done, ctx, pb, filter, stats, cancel,
                );
            });
        }
    }

    /// Snapshots one query's counters and routes it to the right
    /// index-lifetime audit: `queries_served` for completed queries,
    /// `queries_cancelled` for abandoned ones (whose partial sweep work
    /// is still visible in the returned per-query counters).
    fn finish_query(&self, stats: &AtomicStats, cancelled: bool) -> QueryStats {
        let mut snapshot = stats.snapshot();
        if cancelled {
            snapshot.cancelled = 1;
            self.counters.record_cancelled();
        } else {
            self.record_query_counters(&snapshot);
        }
        snapshot
    }

    /// Fills the scratch's per-query state: normalized query, context
    /// values, query word, root-penalty table, k-NN set, range hit list
    /// and queue flags. Performs no allocation once the buffers are warm.
    fn prepare_scratch(&self, s: &mut QueryScratch, query: &[f32], k: usize) {
        s.q.clear();
        s.q.extend_from_slice(query);
        sofa_simd::znormalize(&mut s.q);
        self.summarization.query_values_reusing(&s.q, &mut s.transform, &mut s.values);
        s.begin(k);
        let ctx = QueryContext::borrowed(&self.query_env, &s.values);
        // The query word is the quantization of the context's values — no
        // second transform needed.
        ctx.word_into(&mut s.qword);
        s.root_lbd.rebuild(&ctx);
    }

    /// Mirrors one query's sweep counters into the index-lifetime totals
    /// reported by [`crate::IndexStats`].
    fn record_query_counters(&self, stats: &QueryStats) {
        self.counters.record_query();
        self.counters.record_block_sweep(
            stats.block_groups_swept as u64,
            stats.block_lanes_abandoned as u64,
        );
        self.counters.record_collect_sweep(
            stats.collect_groups_swept as u64,
            stats.collect_level_groups_swept as u64,
            stats.collect_leaves_retired_by_levels as u64,
        );
        self.counters.record_quant_sweep(
            stats.quant_groups_swept as u64,
            stats.quant_lanes_killed as u64,
            stats.refine_bytes as u64,
        );
    }

    /// Approximate 1-NN only (the paper's "Approximate Search" stage used
    /// on its own): descend to the query's home leaf and return the best
    /// real distance there. The answer is not guaranteed exact.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch.
    pub fn approximate_nn(&self, query: &[f32]) -> Result<Neighbor, IndexError> {
        self.validate(query, 1)?;
        let mut scratch = self.scratch();
        self.prepare_scratch(&mut scratch, query, 1);
        let s: &QueryScratch = &scratch;
        let ctx = QueryContext::borrowed(&self.query_env, &s.values);
        self.approximate_into(&s.q, &s.qword, &ctx, &s.root_lbd, &KnnBound { set: &s.knn }, None);
        s.knn.sorted().first().copied().ok_or_else(|| IndexError::BadQuery("index is empty".into()))
    }

    /// Approximate search (paper §IV-C): identify the leaf with the
    /// smallest lower-bound distance and seed the bound from its series.
    ///
    /// The query's home subtree (exact root-key match) is tried first; the
    /// descent then follows the child with the smaller node-level mindist,
    /// which is robust even when individual word bits of the query are
    /// noisy. When no subtree matches the key, the subtree whose root has
    /// the smallest mindist is used instead — evaluated through the
    /// precomputed [`RootLbd`] table, once per subtree (the former
    /// `min_by` recomputed the full scalar `mindist_node` for both sides
    /// of every comparison).
    ///
    /// Filtered queries skip rejected rows *before* scoring: a filtered
    /// row must never tighten the bound, or an admissible farther
    /// neighbor could be wrongly pruned.
    fn approximate_into<B: PruneBound>(
        &self,
        q: &[f32],
        qword: &[u8],
        ctx: &QueryContext<'_>,
        root_lbd: &RootLbd,
        pb: &B,
        filter: Option<&RowFilter>,
    ) {
        let admits = |row: u32| filter.map_or(true, |f| f.admits(row as usize));
        let key = root_key(qword, self.summarization.symbol_bits());
        let subtree = match self.subtrees.binary_search_by_key(&key, |s| s.key) {
            Ok(i) => &self.subtrees[i],
            Err(_) => {
                let mut best = (f32::INFINITY, 0usize);
                for (i, st) in self.subtrees.iter().enumerate() {
                    let d = root_lbd.eval(st.key);
                    if d < best.0 {
                        best = (d, i);
                    }
                }
                &self.subtrees[best.1]
            }
        };
        let mut node = &subtree.nodes[0];
        loop {
            match &node.kind {
                NodeKind::Leaf { rows, pack } => {
                    if let Some(pack) = pack {
                        // Packed leaf: stream the contiguous arena run.
                        let start = pack.start as usize;
                        for i in 0..rows.len() {
                            let slot = start + i;
                            let row = self.slot_to_row[slot];
                            if !admits(row) {
                                continue;
                            }
                            pb.score_and_offer(q, self.series_at_slot(slot), row);
                        }
                        return;
                    }
                    for &row in rows {
                        if !admits(row) {
                            continue;
                        }
                        // An abandoned distance (> bound) is rejected by
                        // the policy's offer anyway, so no exactness
                        // hazard here.
                        pb.score_and_offer(q, self.series(row as usize), row);
                    }
                    return;
                }
                NodeKind::Inner { left, right, .. } => {
                    let l = &subtree.nodes[*left as usize];
                    let r = &subtree.nodes[*right as usize];
                    let dl = mindist_node(ctx, &l.prefixes, &l.bits);
                    let dr = mindist_node(ctx, &r.prefixes, &r.bits);
                    node = if dl <= dr { l } else { r };
                }
            }
        }
    }

    /// Prices one subtree against the bound and pushes its surviving
    /// leaves into the queues: one [`RootLbd`] XOR evaluation gates the
    /// whole subtree; on deep subtrees a top-down **level sweep** then
    /// prices the top levels of internal nodes 8 per dispatched kernel
    /// call, where each pruned lane retires its entire descendant leaf
    /// range; finally the surviving leaf-fringe lanes are priced 8 per
    /// call (whole groups abandoning mid-sum against the bound). Lanes
    /// left stale by online splits — and subtrees without a block — fall
    /// back to the scalar DFS.
    ///
    /// Collect is filter-agnostic: node bounds hold for every row under a
    /// node, admitted or not, so pruning decisions are unchanged and the
    /// predicate is applied at refine granularity.
    #[allow(clippy::too_many_arguments)]
    fn collect_subtree<B: PruneBound>(
        &self,
        subtree: &Subtree,
        subtree_idx: u32,
        ctx: &QueryContext<'_>,
        root_lbd: &RootLbd,
        pb: &B,
        queues: &[Mutex<LeafQueue>],
        push_counter: &AtomicUsize,
        lane_scratch: &mut LaneScratch,
        stats: &AtomicStats,
        cancel: Option<&CancelToken>,
    ) {
        // The root's 1-bit-per-position label is fully determined by the
        // subtree key: the precomputed XOR-penalty evaluation prices the
        // whole subtree in a few bit operations (this gate runs for every
        // subtree of every query).
        let root_bound = root_lbd.eval(subtree.key);
        if pb.prunes(root_bound) {
            stats.nodes_pruned.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if subtree.nodes.len() == 1 {
            // Single-leaf subtree (wide forests produce thousands): the
            // root evaluation above *is* the leaf's exact bound — its
            // 1-bit prefixes are fully determined by the key — so a
            // block sweep would only re-derive it the slow way.
            if let NodeKind::Leaf { rows, .. } = &subtree.nodes[0].kind {
                if !rows.is_empty() {
                    push_leaf(root_bound, subtree_idx, 0, queues, push_counter);
                    stats.leaves_collected.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
        let Some(cb) = &subtree.collect else {
            let stack = &mut lane_scratch.stack;
            stack.clear();
            stack.push(0);
            self.collect_dfs(
                subtree,
                subtree_idx,
                ctx,
                Some(root_bound),
                pb,
                queues,
                push_counter,
                stack,
                stats,
                cancel,
            );
            return;
        };
        let mut lbs = [0.0f32; BLOCK_LANES];

        // --- Level sweep (deep subtrees only): price the top levels of
        // internal nodes top-down; a pruned lane marks its whole
        // descendant leaf range dead before the fringe is ever touched.
        // Because the fringe is in DFS order, every lane's descendants
        // form the contiguous span `[leaf_lo, leaf_hi)`; at the moment
        // level `d` is swept, a lane's span is either fully alive or was
        // killed wholesale by an ancestor, so checking its first leaf
        // suffices.
        let use_levels = !cb.levels.is_empty();
        if use_levels {
            lane_scratch.reset_dead(cb.node_ids.len());
            let mut retired = 0usize;
            for (lvl, lanes_meta) in cb.levels.iter().enumerate() {
                let block = cb.level_blocks.level(lvl);
                for g in 0..block.n_groups() {
                    // Cancellation checkpoint at group-sweep granularity:
                    // an expired query stops pricing levels mid-subtree.
                    if fired(cancel) {
                        return;
                    }
                    let lanes = block.lanes_in(g);
                    let base = g * BLOCK_LANES;
                    if (0..lanes)
                        .all(|i| lane_scratch.dead[lanes_meta.leaf_spans[base + i].0 as usize])
                    {
                        continue;
                    }
                    stats.collect_level_groups_swept.fetch_add(1, Ordering::Relaxed);
                    let bound = pb.l2_bound();
                    let group_abandoned =
                        mindist_level_block(ctx, &cb.level_blocks, lvl, g, bound, &mut lbs);
                    for (i, &lbd) in lbs.iter().enumerate().take(lanes) {
                        let (lo, hi) = lanes_meta.leaf_spans[base + i];
                        if lane_scratch.dead[lo as usize] {
                            continue;
                        }
                        // On a whole-group abandon every lane's (partial)
                        // sum already exceeded the kernel threshold
                        // (strictly — valid for every policy); otherwise
                        // re-ask the policy, whose bound only tightens as
                        // refinement overlaps.
                        if group_abandoned || pb.prunes(lbd) {
                            stats.nodes_pruned.fetch_add(1, Ordering::Relaxed);
                            retired += (hi - lo) as usize;
                            lane_scratch.mark_dead(lo as usize, hi as usize);
                        }
                    }
                }
            }
            stats.collect_leaves_retired_by_levels.fetch_add(retired, Ordering::Relaxed);
        }

        // --- Leaf-fringe sweep over the survivors.
        let LaneScratch { stack, dead, dead_in_group } = lane_scratch;
        #[allow(clippy::needless_range_loop)] // g also derives the lane base
        for g in 0..cb.block.n_groups() {
            // Cancellation checkpoint at group-sweep granularity.
            if fired(cancel) {
                return;
            }
            let lanes = cb.block.lanes_in(g);
            let base = g * BLOCK_LANES;
            if use_levels && dead_in_group[g] as usize == lanes {
                // The whole group was retired by ancestor prunes: no
                // kernel call, and the skip test is one byte compare.
                continue;
            }
            let bound = pb.l2_bound();
            stats.collect_groups_swept.fetch_add(1, Ordering::Relaxed);
            if mindist_node_block(ctx, &cb.block, g, bound, &mut lbs) {
                // Every lane's (partial) sum strictly exceeded the
                // threshold: 8 leaves pruned in one shot.
                stats.nodes_pruned.fetch_add(lanes, Ordering::Relaxed);
                continue;
            }
            for (i, &lbd) in lbs.iter().enumerate().take(lanes) {
                if use_levels && dead[base + i] {
                    continue; // already counted at the ancestor prune
                }
                // Re-ask the policy: its bound tightens as refinement
                // overlaps.
                if pb.prunes(lbd) {
                    stats.nodes_pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let id = cb.node_ids[base + i];
                match &subtree.nodes[id as usize].kind {
                    NodeKind::Leaf { rows, .. } => {
                        if rows.is_empty() {
                            continue;
                        }
                        push_leaf(lbd, subtree_idx, id, queues, push_counter);
                        stats.leaves_collected.fetch_add(1, Ordering::Relaxed);
                    }
                    NodeKind::Inner { left, right, .. } => {
                        // Stale lane: this leaf split after the block was
                        // built. Its lane bound (the parent interval)
                        // stayed valid for the descendants; finish them
                        // with a scalar descent.
                        stack.clear();
                        stack.push(*left);
                        stack.push(*right);
                        self.collect_dfs(
                            subtree,
                            subtree_idx,
                            ctx,
                            None,
                            pb,
                            queues,
                            push_counter,
                            stack,
                            stats,
                            cancel,
                        );
                    }
                }
            }
        }
    }

    /// Scalar collect DFS over a pre-seeded `stack` of node ids: the
    /// fallback for subtrees without a collect block and for stale
    /// post-split lanes. `root_bound` supplies node 0's precomputed
    /// [`RootLbd`] evaluation when the DFS starts at the subtree root.
    #[allow(clippy::too_many_arguments)]
    fn collect_dfs<B: PruneBound>(
        &self,
        subtree: &Subtree,
        subtree_idx: u32,
        ctx: &QueryContext<'_>,
        root_bound: Option<f32>,
        pb: &B,
        queues: &[Mutex<LeafQueue>],
        push_counter: &AtomicUsize,
        stack: &mut Vec<u32>,
        stats: &AtomicStats,
        cancel: Option<&CancelToken>,
    ) {
        while let Some(id) = stack.pop() {
            if fired(cancel) {
                return;
            }
            let node = &subtree.nodes[id as usize];
            let lbd = match (id, root_bound) {
                (0, Some(b)) => b,
                _ => mindist_node(ctx, &node.prefixes, &node.bits),
            };
            if pb.prunes(lbd) {
                stats.nodes_pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match &node.kind {
                NodeKind::Leaf { rows, .. } => {
                    if rows.is_empty() {
                        continue;
                    }
                    push_leaf(lbd, subtree_idx, id, queues, push_counter);
                    stats.leaves_collected.fetch_add(1, Ordering::Relaxed);
                }
                NodeKind::Inner { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
    }

    /// Drains queues starting at `worker`'s own queue: pop the minimum
    /// leaf, abandon the whole queue once its minimum is pruned by the
    /// policy, otherwise refine the leaf's series.
    #[allow(clippy::too_many_arguments)]
    fn refine_from_queues<B: PruneBound>(
        &self,
        worker: usize,
        q: &[f32],
        queues: &[Mutex<LeafQueue>],
        done: &[AtomicBool],
        ctx: &QueryContext<'_>,
        pb: &B,
        filter: Option<&RowFilter>,
        stats: &AtomicStats,
        cancel: Option<&CancelToken>,
    ) {
        let nq = queues.len();
        let mut quant = QuantScratch::new();
        loop {
            let mut progressed = false;
            for offset in 0..nq {
                // Cancellation checkpoint per popped leaf: an expired
                // query stops draining its queues mid-refine.
                if fired(cancel) {
                    return;
                }
                let qi = (worker + offset) % nq;
                if done[qi].load(Ordering::Acquire) {
                    continue;
                }
                let entry = queues[qi].lock().pop();
                let Some(Reverse(entry)) = entry else {
                    done[qi].store(true, Ordering::Release);
                    continue;
                };
                progressed = true;
                if pb.prunes(entry.lbd) {
                    // Everything left in this queue has a larger lower
                    // bound: abandon it wholesale (paper §IV-C).
                    done[qi].store(true, Ordering::Release);
                    stats.queues_abandoned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                self.refine_leaf(entry, q, ctx, pb, filter, stats, &mut quant, cancel);
            }
            if !progressed && done.iter().all(|d| d.load(Ordering::Acquire)) {
                break;
            }
            if !progressed {
                // All queues momentarily empty but not flagged: flag them.
                for d in done {
                    d.store(true, Ordering::Release);
                }
            }
        }
    }

    /// Evaluates every series in a leaf: lower bounds first, exact scores
    /// only for survivors; both early-abandon on the policy's threshold.
    ///
    /// Packed leaves (the bulk-built common case) take the batched path:
    /// the block kernel lower-bounds 8 candidates per call over the SoA
    /// word block, then exact distances stream over the leaf's contiguous
    /// arena run. Leaves touched by online inserts fall back to the
    /// per-row path until [`Index::repack_leaves`] (which the auto-repack
    /// trigger runs for you by default).
    #[allow(clippy::too_many_arguments)]
    fn refine_leaf<B: PruneBound>(
        &self,
        entry: QueueEntry,
        q: &[f32],
        ctx: &QueryContext<'_>,
        pb: &B,
        filter: Option<&RowFilter>,
        stats: &AtomicStats,
        qscratch: &mut QuantScratch,
        cancel: Option<&CancelToken>,
    ) {
        // Chaos hook: `ext-chaos` arms this to panic or stall inside the
        // refine funnel, underneath every batching/serving layer.
        let _ = sofa_exec::failpoint::fire("sofa-index::refine_leaf");
        let subtree = &self.subtrees[entry.subtree as usize];
        let node = &subtree.nodes[entry.node as usize];
        stats.leaves_refined.fetch_add(1, Ordering::Relaxed);
        match &node.kind {
            NodeKind::Leaf { rows, pack: Some(pack) } => {
                self.refine_leaf_packed(
                    pack,
                    rows.len(),
                    q,
                    ctx,
                    pb,
                    filter,
                    stats,
                    qscratch,
                    cancel,
                );
            }
            NodeKind::Leaf { rows, pack: None } => {
                self.refine_leaf_rows(rows, q, ctx, pb, filter, stats);
            }
            NodeKind::Inner { .. } => unreachable!("queues only hold leaves"),
        }
    }

    /// The batched refinement path over a packed leaf — a three-stage
    /// funnel. The word lower bound prices 8 lanes per call over the SoA
    /// bounds; word survivors are re-priced by the scalar-quantized tier
    /// (one integer sweep over 1-byte codes, ~4x less traffic than the
    /// raw series); only lanes both tiers fail to kill pay the exact
    /// `f32` scan. Both cheap tiers are conservative lower bounds, so the
    /// funnel never changes results — only how much memory they cost.
    ///
    /// With a [`RowFilter`], each group's live mask pre-ANDs the
    /// predicate into the sweep: a fully rejected group skips every
    /// kernel, a partially rejected one runs the masked kernels (dead
    /// lanes price `+inf`/auto-resolve, accelerating whole-group
    /// abandons), and a fully admitted one takes the exact unmasked path.
    #[allow(clippy::too_many_arguments)]
    fn refine_leaf_packed<B: PruneBound>(
        &self,
        pack: &LeafPack,
        n_rows: usize,
        q: &[f32],
        ctx: &QueryContext<'_>,
        pb: &B,
        filter: Option<&RowFilter>,
        stats: &AtomicStats,
        qscratch: &mut QuantScratch,
        cancel: Option<&CancelToken>,
    ) {
        let block = &pack.block;
        debug_assert_eq!(block.n(), n_rows);
        let start = pack.start as usize;
        let n = self.series_len;
        let quant = match (&self.quant_grid, pack.quant.as_ref()) {
            (Some(grid), Some(qb)) if self.quant_refine_enabled() => Some((grid, qb)),
            _ => None,
        };
        let mut lbs = [0.0f32; BLOCK_LANES];
        let mut qthr = [0i32; BLOCK_LANES];
        let mut qsums = [0i32; BLOCK_LANES];
        let mut refined = 0usize;
        let mut lanes_abandoned = 0usize;
        let mut quant_groups = 0usize;
        let mut quant_killed = 0usize;
        let mut predicate_masked = 0usize;
        for g in 0..block.n_groups() {
            // Cancellation checkpoint at group-sweep granularity: the
            // partial offers already made are discarded wholesale by the
            // caller, so bailing mid-leaf cannot skew exactness.
            if fired(cancel) {
                break;
            }
            let bound = pb.l2_bound();
            let lanes = block.lanes_in(g);
            // Predicate mask: bit `i` lives iff the filter admits lane
            // `i`'s row. Pad lanes past `lanes` never get a bit, so a
            // bitmap that ends mid-group can't admit a phantom row (the
            // unmasked path ignores pads via `take(lanes)` as before).
            let (live, masked) = match filter {
                None => (0xFFu8, 0usize),
                Some(f) => {
                    let mut m = 0u8;
                    for i in 0..lanes {
                        if f.admits(self.slot_to_row[start + g * BLOCK_LANES + i] as usize) {
                            m |= 1 << i;
                        }
                    }
                    (m, lanes - m.count_ones() as usize)
                }
            };
            predicate_masked += masked;
            if live == 0 {
                // Whole group predicate-rejected: no kernel runs at all.
                continue;
            }
            let group_abandoned = if masked == 0 {
                mindist_block(ctx, block, g, bound, &mut lbs)
            } else {
                mindist_block_masked(ctx, block, g, bound, live, &mut lbs)
            };
            if group_abandoned {
                // Every live lane's (partial) sum exceeded the bound: the
                // whole group is pruned in one shot.
                lanes_abandoned += lanes - masked;
                continue;
            }
            // Quantized middle tier: one integer sweep re-prices the
            // whole group from 1-byte codes before any lane touches the
            // f32 arena. Only engaged when enough lanes survived the word
            // bound: the sweep reads all 8 lanes' codes (`8n` bytes,
            // roughly the traffic of two `f32` row scans), so pricing a
            // lone straggler costs more than the one scan it could save.
            // Dead lanes carry `+inf` word bounds, so they never count as
            // survivors.
            let mut quant_priced = false;
            if let Some((grid, qb)) = quant {
                let survivors = lbs.iter().take(lanes).filter(|&&l| !pb.prunes(l)).count();
                if survivors >= QUANT_MIN_SURVIVORS {
                    if qscratch.err_q.is_nan() {
                        // First engagement anywhere in this query: encode
                        // the query under the index-wide grid. Every
                        // later leaf reuses the same codes.
                        qscratch.err_q = grid.quantize_query(q, &mut qscratch.codes[..n]);
                    }
                    qb.thresholds(g, pb.l2_bound(), qscratch.err_q, &mut qthr);
                    quant_groups += 1;
                    let all_resolved = if masked == 0 {
                        quant_lower_bound(
                            &qscratch.codes[..n],
                            qb.group_codes(g),
                            &qthr,
                            &mut qsums,
                        )
                    } else {
                        quant_lower_bound_masked(
                            &qscratch.codes[..n],
                            qb.group_codes(g),
                            &qthr,
                            live,
                            &mut qsums,
                        )
                    };
                    if all_resolved {
                        // Every live lane's integer sum crossed its
                        // threshold: all word survivors die without
                        // touching f32 data (partial sums only grow, so
                        // the verdict is already final, and the threshold
                        // guarantee is strict — safe for range ties).
                        for (i, &l) in lbs.iter().enumerate().take(lanes) {
                            if live & (1 << i) == 0 {
                                continue; // counted in predicate_masked
                            }
                            if pb.prunes(l) {
                                lanes_abandoned += 1;
                            } else {
                                quant_killed += 1;
                            }
                        }
                        continue;
                    }
                    quant_priced = true;
                }
            }
            for (i, &lbd) in lbs.iter().enumerate().take(lanes) {
                if live & (1 << i) == 0 {
                    continue; // predicate-rejected; counted once per group
                }
                // Re-ask the policy: its bound tightens as lanes refine.
                if pb.prunes(lbd) {
                    lanes_abandoned += 1;
                    continue;
                }
                if quant_priced {
                    let (_, qb) = quant.expect("quant_priced implies a quant block");
                    let qlb = qb.lane_bound(qsums[i], qb.group_errs(g)[i], qscratch.err_q);
                    if pb.prunes_f64(qlb) {
                        quant_killed += 1;
                        continue;
                    }
                }
                refined += 1;
                let slot = start + g * BLOCK_LANES + i;
                pb.score_and_offer(q, self.series_at_slot(slot), self.slot_to_row[slot]);
            }
        }
        // Refine-traffic estimate: word bounds are BOUNDS_STRIDE f32 per
        // position per group, quant codes 8 bytes per position per group,
        // exact rows n f32 each.
        let bytes = block.n_groups() * block.word_len() * BOUNDS_STRIDE * 4
            + quant_groups * n * BLOCK_LANES
            + refined * n * 4;
        stats.series_lbd_checked.fetch_add(n_rows - predicate_masked, Ordering::Relaxed);
        stats.series_refined.fetch_add(refined, Ordering::Relaxed);
        stats.block_groups_swept.fetch_add(block.n_groups(), Ordering::Relaxed);
        stats.block_lanes_abandoned.fetch_add(lanes_abandoned, Ordering::Relaxed);
        stats.quant_groups_swept.fetch_add(quant_groups, Ordering::Relaxed);
        stats.quant_lanes_killed.fetch_add(quant_killed, Ordering::Relaxed);
        stats.predicate_lanes_masked.fetch_add(predicate_masked, Ordering::Relaxed);
        stats.refine_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// The per-row fallback path (leaves invalidated by online inserts).
    fn refine_leaf_rows<B: PruneBound>(
        &self,
        rows: &[u32],
        q: &[f32],
        ctx: &QueryContext<'_>,
        pb: &B,
        filter: Option<&RowFilter>,
        stats: &AtomicStats,
    ) {
        let mut refined = 0usize;
        let mut checked = 0usize;
        let mut predicate_masked = 0usize;
        for &row in rows {
            if let Some(f) = filter {
                if !f.admits(row as usize) {
                    predicate_masked += 1;
                    continue;
                }
            }
            checked += 1;
            let bound = pb.l2_bound();
            let lbd = mindist_simd(ctx, self.word(row as usize), bound);
            if pb.prunes(lbd) {
                continue;
            }
            refined += 1;
            pb.score_and_offer(q, self.series(row as usize), row);
        }
        stats.series_lbd_checked.fetch_add(checked, Ordering::Relaxed);
        stats.series_refined.fetch_add(refined, Ordering::Relaxed);
        stats.predicate_lanes_masked.fetch_add(predicate_masked, Ordering::Relaxed);
        // Per-row traffic: one symbol word per row plus the exact rows.
        let bytes = checked * self.word_len + refined * self.series_len * 4;
        stats.refine_bytes.fetch_add(bytes, Ordering::Relaxed);
    }
}

/// Pushes one surviving leaf into the queues, round-robin on the shared
/// push counter.
#[inline]
fn push_leaf(
    lbd: f32,
    subtree: u32,
    node: u32,
    queues: &[Mutex<LeafQueue>],
    push_counter: &AtomicUsize,
) {
    let slot = push_counter.fetch_add(1, Ordering::Relaxed) % queues.len();
    queues[slot].lock().push(Reverse(QueueEntry { lbd, subtree, node }));
}
