//! Exact query answering (paper §IV-C, Figure 5 stage 2).
//!
//! The three GEMINI phases — approximate seed, parallel collect, parallel
//! refine — are documented on the crate root. All pruning reads a shared
//! atomic best-so-far bound (the k-th best distance for k-NN); every
//! surviving candidate pays a SIMD lower-bound check before the real
//! distance is computed, both early-abandoned against the bound.
//!
//! Parallel phases execute on the index's persistent [`sofa_exec::ExecPool`]
//! (no per-query thread spawning); [`Index::knn_batch`] additionally
//! amortizes dispatch across a whole mini-batch by running one serial
//! query per pool lane at a time.

use crate::bsf::{KnnSet, Neighbor};
use crate::node::{root_key, LeafPack, NodeKind, Subtree};
use crate::{Index, IndexError};
use parking_lot::Mutex;
use sofa_simd::{euclidean_sq_early_abandon, BLOCK_LANES};
use sofa_summaries::{
    mindist_block, mindist_node, mindist_simd, QueryContext, RootLbd, Summarization,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counters describing how much work one query performed — the raw
/// material for the paper's pruning-power discussion (§V-E).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Leaves pushed into the priority queues.
    pub leaves_collected: usize,
    /// Leaves whose series were actually examined.
    pub leaves_refined: usize,
    /// Inner nodes or leaves pruned by the node-level lower bound.
    pub nodes_pruned: usize,
    /// Per-series lower-bound evaluations.
    pub series_lbd_checked: usize,
    /// Per-series real-distance evaluations (survived the LBD).
    pub series_refined: usize,
    /// Queues abandoned because their minimum exceeded the bound.
    pub queues_abandoned: usize,
    /// 8-candidate groups swept by the block lower-bound kernel.
    pub block_groups_swept: usize,
    /// Candidate lanes pruned by the block sweep (whole-group abandons
    /// plus individual lanes at or above the bound).
    pub block_lanes_abandoned: usize,
}

#[derive(Default)]
struct AtomicStats {
    leaves_collected: AtomicUsize,
    leaves_refined: AtomicUsize,
    nodes_pruned: AtomicUsize,
    series_lbd_checked: AtomicUsize,
    series_refined: AtomicUsize,
    queues_abandoned: AtomicUsize,
    block_groups_swept: AtomicUsize,
    block_lanes_abandoned: AtomicUsize,
}

impl AtomicStats {
    fn snapshot(&self) -> QueryStats {
        QueryStats {
            leaves_collected: self.leaves_collected.load(Ordering::Relaxed),
            leaves_refined: self.leaves_refined.load(Ordering::Relaxed),
            nodes_pruned: self.nodes_pruned.load(Ordering::Relaxed),
            series_lbd_checked: self.series_lbd_checked.load(Ordering::Relaxed),
            series_refined: self.series_refined.load(Ordering::Relaxed),
            queues_abandoned: self.queues_abandoned.load(Ordering::Relaxed),
            block_groups_swept: self.block_groups_swept.load(Ordering::Relaxed),
            block_lanes_abandoned: self.block_lanes_abandoned.load(Ordering::Relaxed),
        }
    }
}

/// A leaf waiting in a priority queue, ordered by ascending lower bound.
#[derive(Copy, Clone, Debug, PartialEq)]
struct QueueEntry {
    lbd: f32,
    subtree: u32,
    node: u32,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.lbd
            .total_cmp(&other.lbd)
            .then_with(|| self.subtree.cmp(&other.subtree))
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<S: Summarization> Index<S> {
    /// Exact 1-NN under z-normalized Euclidean distance.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch.
    pub fn nn(&self, query: &[f32]) -> Result<Neighbor, IndexError> {
        Ok(self.knn(query, 1)?[0])
    }

    /// Exact k-NN, best first. Returns `min(k, n_series)` neighbors.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or `k == 0`.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Neighbor>, IndexError> {
        self.knn_with_stats(query, k).map(|(nn, _)| nn)
    }

    /// Exact k-NN plus per-query work counters.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch or `k == 0`.
    pub fn knn_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Neighbor>, QueryStats), IndexError> {
        if query.len() != self.series_len {
            return Err(IndexError::BadQuery(format!(
                "query length {} != series length {}",
                query.len(),
                self.series_len
            )));
        }
        if k == 0 {
            return Err(IndexError::BadQuery("k must be at least 1".into()));
        }

        // Work in z-normalized space, like every indexed series.
        let mut q = query.to_vec();
        sofa_simd::znormalize(&mut q);
        Ok(self.knn_znormed(&q, k))
    }

    /// Exact k-NN for a batch of queries (row-major), best first per
    /// query. Queries are distributed across the worker pool — each runs
    /// the serial per-query path, so a batch keeps every lane busy with
    /// zero intra-query synchronization (the FAISS mini-batch model the
    /// paper uses for its flat competitor, applied to the tree).
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] if the buffer is not a whole
    /// number of series or `k == 0`.
    pub fn knn_batch(&self, queries: &[f32], k: usize) -> Result<Vec<Vec<Neighbor>>, IndexError> {
        if k == 0 {
            return Err(IndexError::BadQuery("k must be at least 1".into()));
        }
        if queries.len() % self.series_len != 0 {
            return Err(IndexError::BadQuery(format!(
                "query buffer of {} floats is not a multiple of series length {}",
                queries.len(),
                self.series_len
            )));
        }
        let n = self.series_len;
        let n_queries = queries.len() / n;
        if n_queries == 0 {
            return Ok(Vec::new());
        }
        if self.pool.threads() == 1 || n_queries == 1 {
            // Nothing to amortize: answer one query at a time (a single
            // query still gets intra-query parallelism).
            return queries.chunks(n).map(|q| self.knn(q, k)).collect();
        }
        let results: Vec<Mutex<Vec<Neighbor>>> =
            (0..n_queries).map(|_| Mutex::new(Vec::new())).collect();
        let next_query = AtomicUsize::new(0);
        self.pool.broadcast(|_| {
            // Lane-local scratch reused across every query this lane
            // claims: the normalized-query and query-word buffers are
            // allocated once per lane, not once per batch member.
            let mut q: Vec<f32> = Vec::with_capacity(n);
            let mut qword: Vec<u8> = Vec::new();
            loop {
                let i = next_query.fetch_add(1, Ordering::Relaxed);
                if i >= n_queries {
                    break;
                }
                q.clear();
                q.extend_from_slice(&queries[i * n..(i + 1) * n]);
                sofa_simd::znormalize(&mut q);
                let (neighbors, _) = self.knn_one_serial_reusing(&q, k, &mut qword);
                *results[i].lock() = neighbors;
            }
        });
        Ok(results.into_iter().map(Mutex::into_inner).collect())
    }

    /// Answers one z-normalized query, on the pool when it has more than
    /// one lane.
    fn knn_znormed(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        if self.pool.threads() == 1 {
            // Serial fast path: identical algorithm without any task
            // dispatch, whose cost would dominate sub-millisecond queries
            // and mask the algorithmic comparison.
            return self.knn_one_serial(q, k);
        }

        let ctx = QueryContext::new(&self.summarization, q);
        // The query word is the quantization of the context's values — no
        // second transform needed. One buffer serves the whole query.
        let mut qword = Vec::new();
        ctx.word_into(&mut qword);
        let root_lbd = RootLbd::new(&ctx);

        let knn = KnnSet::new(k);
        let stats = AtomicStats::default();

        // --- Phase 1: approximate search seeds the BSF.
        self.approximate_into(q, &qword, &ctx, &knn);

        // --- Phase 2: collect unpruned leaves into priority queues. Pool
        // lanes claim subtrees off an atomic counter.
        let num_queues = self.config.num_queues.max(1);
        let queues: Vec<Mutex<BinaryHeap<Reverse<QueueEntry>>>> =
            (0..num_queues).map(|_| Mutex::new(BinaryHeap::new())).collect();
        let next_subtree = AtomicUsize::new(0);
        let push_counter = AtomicUsize::new(0);
        let done: Vec<AtomicBool> = (0..num_queues).map(|_| AtomicBool::new(false)).collect();

        self.pool.broadcast(|_| loop {
            let s = next_subtree.fetch_add(1, Ordering::Relaxed);
            if s >= self.subtrees.len() {
                break;
            }
            self.collect_subtree(
                &self.subtrees[s],
                s as u32,
                &ctx,
                &root_lbd,
                &knn,
                &queues,
                &push_counter,
                &stats,
            );
        });

        // --- Phase 3: refine from the queues, one lane per worker slot.
        self.pool.broadcast(|worker| {
            self.refine_from_queues(worker, q, &queues, &done, &ctx, &knn, &stats);
        });

        let snapshot = stats.snapshot();
        self.record_query_counters(&snapshot);
        (knn.into_sorted(), snapshot)
    }

    /// Mirrors one query's block-sweep counters into the index-lifetime
    /// totals reported by [`crate::IndexStats`].
    fn record_query_counters(&self, stats: &QueryStats) {
        self.counters.record_query();
        self.counters.record_block_sweep(
            stats.block_groups_swept as u64,
            stats.block_lanes_abandoned as u64,
        );
    }

    /// The fully serial query path: same three phases, no synchronization
    /// beyond the (uncontended) shared-state types. Used by 1-lane pools.
    fn knn_one_serial(&self, q: &[f32], k: usize) -> (Vec<Neighbor>, QueryStats) {
        let mut qword = Vec::new();
        self.knn_one_serial_reusing(q, k, &mut qword)
    }

    /// [`Index::knn_one_serial`] with a caller-owned query-word buffer, so
    /// the batch workers summarize every query they claim without a fresh
    /// allocation.
    fn knn_one_serial_reusing(
        &self,
        q: &[f32],
        k: usize,
        qword: &mut Vec<u8>,
    ) -> (Vec<Neighbor>, QueryStats) {
        let ctx = QueryContext::new(&self.summarization, q);
        ctx.word_into(qword);
        let root_lbd = RootLbd::new(&ctx);
        let knn = KnnSet::new(k);
        let stats = AtomicStats::default();

        self.approximate_into(q, qword, &ctx, &knn);

        let num_queues = self.config.num_queues.max(1);
        let queues: Vec<Mutex<BinaryHeap<Reverse<QueueEntry>>>> =
            (0..num_queues).map(|_| Mutex::new(BinaryHeap::new())).collect();
        let push_counter = AtomicUsize::new(0);
        let done: Vec<AtomicBool> = (0..num_queues).map(|_| AtomicBool::new(false)).collect();

        for (s, subtree) in self.subtrees.iter().enumerate() {
            self.collect_subtree(
                subtree,
                s as u32,
                &ctx,
                &root_lbd,
                &knn,
                &queues,
                &push_counter,
                &stats,
            );
        }
        self.refine_from_queues(0, q, &queues, &done, &ctx, &knn, &stats);
        let snapshot = stats.snapshot();
        self.record_query_counters(&snapshot);
        (knn.into_sorted(), snapshot)
    }

    /// Approximate 1-NN only (the paper's "Approximate Search" stage used
    /// on its own): descend to the query's home leaf and return the best
    /// real distance there. The answer is not guaranteed exact.
    ///
    /// # Errors
    /// Returns [`IndexError::BadQuery`] on a length mismatch.
    pub fn approximate_nn(&self, query: &[f32]) -> Result<Neighbor, IndexError> {
        if query.len() != self.series_len {
            return Err(IndexError::BadQuery(format!(
                "query length {} != series length {}",
                query.len(),
                self.series_len
            )));
        }
        let mut q = query.to_vec();
        sofa_simd::znormalize(&mut q);
        let ctx = QueryContext::new(&self.summarization, &q);
        let mut qword = Vec::new();
        ctx.word_into(&mut qword);
        let knn = KnnSet::new(1);
        self.approximate_into(&q, &qword, &ctx, &knn);
        knn.sorted().first().copied().ok_or_else(|| IndexError::BadQuery("index is empty".into()))
    }

    /// Approximate search (paper §IV-C): identify the leaf with the
    /// smallest lower-bound distance and seed the BSF from its series.
    ///
    /// The query's home subtree (exact root-key match) is tried first; the
    /// descent then follows the child with the smaller node-level mindist,
    /// which is robust even when individual word bits of the query are
    /// noisy. When no subtree matches the key, the subtree whose root has
    /// the smallest mindist is used instead.
    fn approximate_into(&self, q: &[f32], qword: &[u8], ctx: &QueryContext<'_>, knn: &KnnSet) {
        let key = root_key(qword, self.summarization.symbol_bits());
        let subtree = match self.subtrees.binary_search_by_key(&key, |s| s.key) {
            Ok(i) => &self.subtrees[i],
            Err(_) => self
                .subtrees
                .iter()
                .min_by(|a, b| {
                    let da = mindist_node(ctx, &a.nodes[0].prefixes, &a.nodes[0].bits);
                    let db = mindist_node(ctx, &b.nodes[0].prefixes, &b.nodes[0].bits);
                    da.total_cmp(&db)
                })
                .expect("index has at least one subtree"),
        };
        let mut node = &subtree.nodes[0];
        loop {
            match &node.kind {
                NodeKind::Leaf { rows, pack } => {
                    if let Some(pack) = pack {
                        // Packed leaf: stream the contiguous arena run.
                        let start = pack.start as usize;
                        for i in 0..rows.len() {
                            let bound = knn.bound();
                            let slot = start + i;
                            let d = euclidean_sq_early_abandon(q, self.series_at_slot(slot), bound);
                            if d < bound {
                                knn.offer(Neighbor { row: self.slot_to_row[slot], dist_sq: d });
                            }
                        }
                        return;
                    }
                    for &row in rows {
                        let bound = knn.bound();
                        let d = euclidean_sq_early_abandon(q, self.series(row as usize), bound);
                        // An abandoned distance (> bound) is rejected by
                        // `offer` anyway, so no exactness hazard here.
                        if d < bound {
                            knn.offer(Neighbor { row, dist_sq: d });
                        }
                    }
                    return;
                }
                NodeKind::Inner { left, right, .. } => {
                    let l = &subtree.nodes[*left as usize];
                    let r = &subtree.nodes[*right as usize];
                    let dl = mindist_node(ctx, &l.prefixes, &l.bits);
                    let dr = mindist_node(ctx, &r.prefixes, &r.bits);
                    node = if dl <= dr { l } else { r };
                }
            }
        }
    }

    /// DFS over one subtree, pruning by node lower bound and pushing
    /// surviving leaves into the queues round-robin.
    #[allow(clippy::too_many_arguments)]
    fn collect_subtree(
        &self,
        subtree: &Subtree,
        subtree_idx: u32,
        ctx: &QueryContext<'_>,
        root_lbd: &RootLbd,
        knn: &KnnSet,
        queues: &[Mutex<BinaryHeap<Reverse<QueueEntry>>>],
        push_counter: &AtomicUsize,
        stats: &AtomicStats,
    ) {
        let mut stack: Vec<u32> = vec![0];
        while let Some(id) = stack.pop() {
            let node = &subtree.nodes[id as usize];
            // The root's 1-bit-per-position label is fully determined by
            // the subtree key: use the precomputed XOR-penalty evaluation
            // (this scan touches every subtree, so it is hot).
            let lbd = if id == 0 {
                root_lbd.eval(subtree.key)
            } else {
                mindist_node(ctx, &node.prefixes, &node.bits)
            };
            if lbd >= knn.bound() {
                stats.nodes_pruned.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            match &node.kind {
                NodeKind::Leaf { rows, .. } => {
                    if rows.is_empty() {
                        continue;
                    }
                    let slot = push_counter.fetch_add(1, Ordering::Relaxed) % queues.len();
                    queues[slot].lock().push(Reverse(QueueEntry {
                        lbd,
                        subtree: subtree_idx,
                        node: id,
                    }));
                    stats.leaves_collected.fetch_add(1, Ordering::Relaxed);
                }
                NodeKind::Inner { left, right, .. } => {
                    stack.push(*left);
                    stack.push(*right);
                }
            }
        }
    }

    /// Drains queues starting at `worker`'s own queue: pop the minimum
    /// leaf, abandon the whole queue once its minimum exceeds the bound,
    /// otherwise refine the leaf's series.
    #[allow(clippy::too_many_arguments)]
    fn refine_from_queues(
        &self,
        worker: usize,
        q: &[f32],
        queues: &[Mutex<BinaryHeap<Reverse<QueueEntry>>>],
        done: &[AtomicBool],
        ctx: &QueryContext<'_>,
        knn: &KnnSet,
        stats: &AtomicStats,
    ) {
        let nq = queues.len();
        loop {
            let mut progressed = false;
            for offset in 0..nq {
                let qi = (worker + offset) % nq;
                if done[qi].load(Ordering::Acquire) {
                    continue;
                }
                let entry = queues[qi].lock().pop();
                let Some(Reverse(entry)) = entry else {
                    done[qi].store(true, Ordering::Release);
                    continue;
                };
                progressed = true;
                if entry.lbd >= knn.bound() {
                    // Everything left in this queue has a larger lower
                    // bound: abandon it wholesale (paper §IV-C).
                    done[qi].store(true, Ordering::Release);
                    stats.queues_abandoned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                self.refine_leaf(entry, q, ctx, knn, stats);
            }
            if !progressed && done.iter().all(|d| d.load(Ordering::Acquire)) {
                break;
            }
            if !progressed {
                // All queues momentarily empty but not flagged: flag them.
                for d in done {
                    d.store(true, Ordering::Release);
                }
            }
        }
    }

    /// Evaluates every series in a leaf: lower bounds first, real
    /// distances only for survivors; both early-abandon on the bound.
    ///
    /// Packed leaves (the bulk-built common case) take the batched path:
    /// the block kernel lower-bounds 8 candidates per call over the SoA
    /// word block, then exact distances stream over the leaf's contiguous
    /// arena run. Leaves touched by online inserts fall back to the
    /// per-row path until [`Index::repack_leaves`].
    fn refine_leaf(
        &self,
        entry: QueueEntry,
        q: &[f32],
        ctx: &QueryContext<'_>,
        knn: &KnnSet,
        stats: &AtomicStats,
    ) {
        let subtree = &self.subtrees[entry.subtree as usize];
        let node = &subtree.nodes[entry.node as usize];
        stats.leaves_refined.fetch_add(1, Ordering::Relaxed);
        match &node.kind {
            NodeKind::Leaf { rows, pack: Some(pack) } => {
                self.refine_leaf_packed(pack, rows.len(), q, ctx, knn, stats);
            }
            NodeKind::Leaf { rows, pack: None } => {
                self.refine_leaf_rows(rows, q, ctx, knn, stats);
            }
            NodeKind::Inner { .. } => unreachable!("queues only hold leaves"),
        }
    }

    /// The batched refinement path over a packed leaf.
    fn refine_leaf_packed(
        &self,
        pack: &LeafPack,
        n_rows: usize,
        q: &[f32],
        ctx: &QueryContext<'_>,
        knn: &KnnSet,
        stats: &AtomicStats,
    ) {
        let block = &pack.block;
        debug_assert_eq!(block.n(), n_rows);
        let start = pack.start as usize;
        let mut lbs = [0.0f32; BLOCK_LANES];
        let mut refined = 0usize;
        let mut lanes_abandoned = 0usize;
        for g in 0..block.n_groups() {
            let bound = knn.bound();
            let lanes = block.lanes_in(g);
            if mindist_block(ctx, block, g, bound, &mut lbs) {
                // Every lane's (partial) sum exceeded the bound: the
                // whole group is pruned in one shot.
                lanes_abandoned += lanes;
                continue;
            }
            for (i, &lbd) in lbs.iter().enumerate().take(lanes) {
                // Re-read the bound: it tightens as lanes refine.
                let bound = knn.bound();
                if lbd >= bound {
                    lanes_abandoned += 1;
                    continue;
                }
                refined += 1;
                let slot = start + g * BLOCK_LANES + i;
                let d = euclidean_sq_early_abandon(q, self.series_at_slot(slot), bound);
                if d < bound {
                    knn.offer(Neighbor { row: self.slot_to_row[slot], dist_sq: d });
                }
            }
        }
        stats.series_lbd_checked.fetch_add(n_rows, Ordering::Relaxed);
        stats.series_refined.fetch_add(refined, Ordering::Relaxed);
        stats.block_groups_swept.fetch_add(block.n_groups(), Ordering::Relaxed);
        stats.block_lanes_abandoned.fetch_add(lanes_abandoned, Ordering::Relaxed);
    }

    /// The per-row fallback path (leaves invalidated by online inserts).
    fn refine_leaf_rows(
        &self,
        rows: &[u32],
        q: &[f32],
        ctx: &QueryContext<'_>,
        knn: &KnnSet,
        stats: &AtomicStats,
    ) {
        let mut refined = 0usize;
        for &row in rows {
            let bound = knn.bound();
            let lbd = mindist_simd(ctx, self.word(row as usize), bound);
            if lbd >= bound {
                continue;
            }
            refined += 1;
            let d = euclidean_sq_early_abandon(q, self.series(row as usize), bound);
            if d < bound {
                knn.offer(Neighbor { row, dist_sq: d });
            }
        }
        stats.series_lbd_checked.fetch_add(rows.len(), Ordering::Relaxed);
        stats.series_refined.fetch_add(refined, Ordering::Relaxed);
    }
}
