//! Shared best-so-far (BSF) state for parallel query answering.
//!
//! MESSI's workers share one BSF value that every pruning decision reads
//! and every improved real distance tightens (paper §IV-C). We store the
//! squared distance as `f32` bits in an [`std::sync::atomic::AtomicU32`]:
//! for non-negative IEEE-754 floats the bit pattern is monotone in the
//! value, so a CAS-min on the bits is a CAS-min on the distance.
//!
//! For k-NN the BSF is the *k-th best* distance; [`KnnSet`] keeps the k
//! best neighbors in a mutex-protected bounded max-heap and mirrors the
//! k-th distance into an [`AtomicDistance`] so the hot pruning path stays
//! lock-free.

use parking_lot::Mutex;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

/// A lock-free, monotonically decreasing non-negative `f32`.
#[derive(Debug)]
pub struct AtomicDistance {
    bits: AtomicU32,
}

impl AtomicDistance {
    /// Starts at `+inf` (no candidate yet).
    #[must_use]
    pub fn new() -> Self {
        AtomicDistance { bits: AtomicU32::new(f32::INFINITY.to_bits()) }
    }

    /// Current value.
    #[inline]
    #[must_use]
    pub fn load(&self) -> f32 {
        f32::from_bits(self.bits.load(AtomicOrdering::Acquire))
    }

    /// Lowers the value to `candidate` if it improves. Returns `true` when
    /// this call updated the stored value.
    ///
    /// # Panics
    /// Debug-asserts that `candidate` is non-negative (bit-ordering trick
    /// requires it).
    pub fn fetch_min(&self, candidate: f32) -> bool {
        debug_assert!(candidate >= 0.0, "distances must be non-negative");
        let new_bits = candidate.to_bits();
        let mut current = self.bits.load(AtomicOrdering::Acquire);
        loop {
            if f32::from_bits(current) <= candidate {
                return false;
            }
            match self.bits.compare_exchange_weak(
                current,
                new_bits,
                AtomicOrdering::AcqRel,
                AtomicOrdering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }

    /// Overwrites the value unconditionally (used to seed the BSF after
    /// the approximate-search phase).
    pub fn store(&self, value: f32) {
        self.bits.store(value.to_bits(), AtomicOrdering::Release);
    }
}

impl Default for AtomicDistance {
    fn default() -> Self {
        Self::new()
    }
}

/// One answer: a row id and its squared z-normalized Euclidean distance.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Neighbor {
    /// Row index into the indexed dataset.
    pub row: u32,
    /// Squared distance to the query.
    pub dist_sq: f32,
}

impl Eq for Neighbor {}

impl Ord for Neighbor {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist_sq.total_cmp(&other.dist_sq).then_with(|| self.row.cmp(&other.row))
    }
}

impl PartialOrd for Neighbor {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One inner-product answer: a row id and its dot product with the
/// z-normalized query — the result type of [`crate::Index::knn_ip`],
/// ordered best (largest dot) first.
///
/// Internally the engine runs max-inner-product through the L2 funnel by
/// minimizing the score `2n - q·x` (see `sofa-index/src/prune.rs`); this
/// type is the user-facing conversion back.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct IpNeighbor {
    /// Row index into the indexed dataset.
    pub row: u32,
    /// Inner product `q·x` between the z-normalized query and the row.
    pub ip: f32,
}

/// Thread-safe set of the k best neighbors found so far.
///
/// `bound()` is `+inf` until k neighbors exist, then the k-th best squared
/// distance — the value all pruning compares against.
#[derive(Debug)]
pub struct KnnSet {
    k: usize,
    /// Max-heap on distance: the root is the current k-th best.
    heap: Mutex<Vec<Neighbor>>,
    bound: AtomicDistance,
}

impl KnnSet {
    /// Creates a set tracking the `k` nearest neighbors.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        KnnSet { k, heap: Mutex::new(Vec::with_capacity(k + 1)), bound: AtomicDistance::new() }
    }

    /// The current pruning bound (k-th best squared distance, or `+inf`).
    #[inline]
    #[must_use]
    pub fn bound(&self) -> f32 {
        self.bound.load()
    }

    /// Re-arms the set for a fresh query tracking `k` neighbors, reusing
    /// the heap allocation (allocation-free once the capacity has reached
    /// the largest `k` served). This is what lets one pooled
    /// [`crate::Index`] scratch serve every query of a lane.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k >= 1, "k must be at least 1");
        self.k = k;
        let heap = self.heap.get_mut();
        heap.clear();
        heap.reserve(k + 1);
        self.bound.store(f32::INFINITY);
    }

    /// Moves the neighbors found (best first) into `out`, leaving the set
    /// empty but with its capacity intact. `out` is appended to, not
    /// cleared.
    pub fn drain_sorted_into(&self, out: &mut Vec<Neighbor>) {
        let mut heap = self.heap.lock();
        heap.sort_unstable();
        out.extend_from_slice(&heap);
        heap.clear();
    }

    /// Offers a candidate; returns `true` if it entered the k-best set.
    /// Duplicate rows are ignored.
    ///
    /// The set kept is the k smallest neighbors in the `(dist_sq, row)`
    /// total order, so the outcome is independent of offer order: ties at
    /// the k-th distance deterministically keep the lowest row, no matter
    /// which worker or tile reaches them first.
    pub fn offer(&self, candidate: Neighbor) -> bool {
        // Cheap rejection without the lock; a tie with the k-th best
        // distance must take the lock to resolve by row.
        if candidate.dist_sq > self.bound() {
            return false;
        }
        let mut heap = self.heap.lock();
        if heap.iter().any(|n| n.row == candidate.row) {
            return false;
        }
        if heap.len() == self.k && candidate >= *heap.last().expect("non-empty") {
            return false;
        }
        heap.push(candidate);
        heap.sort_unstable(); // k is small (<= 50 in the paper's sweeps)
        if heap.len() > self.k {
            heap.pop();
        }
        if heap.len() == self.k {
            self.bound.store(heap.last().expect("non-empty").dist_sq);
        }
        true
    }

    /// The neighbors found, best first.
    #[must_use]
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v = self.heap.into_inner();
        v.sort_unstable();
        v
    }

    /// Snapshot of the neighbors, best first.
    #[must_use]
    pub fn sorted(&self) -> Vec<Neighbor> {
        let mut v = self.heap.lock().clone();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_distance_min_semantics() {
        let d = AtomicDistance::new();
        assert_eq!(d.load(), f32::INFINITY);
        assert!(d.fetch_min(5.0));
        assert!(!d.fetch_min(7.0));
        assert_eq!(d.load(), 5.0);
        assert!(d.fetch_min(1.5));
        assert_eq!(d.load(), 1.5);
        assert!(d.fetch_min(0.0));
        assert_eq!(d.load(), 0.0);
    }

    #[test]
    fn atomic_distance_concurrent_min() {
        // Contend on one pool's lanes instead of ad-hoc spawned threads:
        // scoped borrows mean no `Arc` cloning and no join bookkeeping.
        let d = AtomicDistance::new();
        let pool = sofa_exec::ExecPool::new(8);
        pool.broadcast(|lane| {
            for i in 0..1000 {
                d.fetch_min(((lane * 1000 + i) % 997) as f32 + 1.0);
            }
        });
        assert_eq!(d.load(), 1.0);
    }

    #[test]
    fn knn_keeps_k_best() {
        let set = KnnSet::new(3);
        for (row, dist) in [(1u32, 9.0f32), (2, 1.0), (3, 4.0), (4, 16.0), (5, 2.0)] {
            set.offer(Neighbor { row, dist_sq: dist });
        }
        let best = set.into_sorted();
        assert_eq!(best.len(), 3);
        assert_eq!(best[0], Neighbor { row: 2, dist_sq: 1.0 });
        assert_eq!(best[1], Neighbor { row: 5, dist_sq: 2.0 });
        assert_eq!(best[2], Neighbor { row: 3, dist_sq: 4.0 });
    }

    #[test]
    fn knn_bound_transitions_from_infinity() {
        let set = KnnSet::new(2);
        assert_eq!(set.bound(), f32::INFINITY);
        set.offer(Neighbor { row: 1, dist_sq: 3.0 });
        assert_eq!(set.bound(), f32::INFINITY); // only 1 of 2 found
        set.offer(Neighbor { row: 2, dist_sq: 5.0 });
        assert_eq!(set.bound(), 5.0);
        set.offer(Neighbor { row: 3, dist_sq: 1.0 });
        assert_eq!(set.bound(), 3.0);
    }

    #[test]
    fn knn_rejects_duplicates_and_worse() {
        let set = KnnSet::new(1);
        assert!(set.offer(Neighbor { row: 7, dist_sq: 2.0 }));
        assert!(!set.offer(Neighbor { row: 7, dist_sq: 2.0 }));
        assert!(!set.offer(Neighbor { row: 8, dist_sq: 3.0 }));
        assert!(set.offer(Neighbor { row: 9, dist_sq: 1.0 }));
        assert_eq!(set.sorted()[0].row, 9);
    }

    #[test]
    fn ties_resolve_to_lowest_row_regardless_of_order() {
        // The k-best set is the k smallest (dist, row) pairs: a tie at
        // the k-th distance keeps the lowest row no matter which worker
        // offered first.
        for order in [[5u32, 9], [9, 5]] {
            let set = KnnSet::new(1);
            for row in order {
                set.offer(Neighbor { row, dist_sq: 2.0 });
            }
            assert_eq!(set.sorted()[0].row, 5, "offer order {order:?}");
        }
        // A tie that loses on row must not evict anything.
        let set = KnnSet::new(1);
        assert!(set.offer(Neighbor { row: 3, dist_sq: 2.0 }));
        assert!(!set.offer(Neighbor { row: 4, dist_sq: 2.0 }));
        assert!(set.offer(Neighbor { row: 2, dist_sq: 2.0 }));
        assert_eq!(set.sorted()[0].row, 2);
    }

    #[test]
    fn neighbor_ordering_breaks_ties_by_row() {
        let a = Neighbor { row: 1, dist_sq: 2.0 };
        let b = Neighbor { row: 2, dist_sq: 2.0 };
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn knn_rejects_zero_k() {
        let _ = KnnSet::new(0);
    }
}
