//! Parallel index construction (paper §IV-G, Figure 5, stage 1).
//!
//! MESSI's build pipeline: raw series are z-normalized and summarized in
//! parallel chunks (each worker owns a disjoint slice of the summary
//! buffer, so no synchronization is needed), rows are grouped by their
//! root key, and the resulting root-child groups are built into subtrees
//! in parallel — each subtree is independent, so workers claim groups off
//! an atomic counter and never contend. We materialize each subtree with
//! a recursive bulk build, which produces exactly the tree that repeated
//! leaf-splitting (iSAX 2.0's balanced splits) would: a leaf over capacity
//! splits on the position whose next bit partitions its rows most evenly.
//!
//! All parallelism executes on a persistent [`ExecPool`] — one created
//! for the index (sized by `IndexConfig::num_threads`) or shared across
//! indexes via [`Index::build_with_pool`]. Ingest is zero-copy:
//! [`Index::build_owned`] takes ownership of the buffer and normalizes it
//! in place, so even the borrowing [`Index::build`] performs exactly one
//! copy of the dataset.

use crate::config::IndexConfig;
use crate::node::{root_key, Node, NodeKind, Subtree};
use crate::{Index, IndexError};
use sofa_exec::ExecPool;
use sofa_simd::znormalize;
use sofa_summaries::Summarization;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

impl<S: Summarization> Index<S> {
    /// Builds an index over `raw_data` (row-major series of the
    /// summarization's length). The data is copied once and z-normalized;
    /// the original buffer is untouched. Prefer [`Index::build_owned`]
    /// when the buffer can be handed over — it avoids even that copy.
    ///
    /// # Errors
    /// Returns [`IndexError::BadDataset`] for an empty buffer or one that
    /// is not a whole number of series.
    pub fn build(
        summarization: S,
        raw_data: &[f32],
        config: IndexConfig,
    ) -> Result<Self, IndexError> {
        Self::build_owned(summarization, raw_data.to_vec(), config)
    }

    /// Zero-copy ingest: builds an index that takes ownership of `data`
    /// and z-normalizes it in place — no duplicate of the dataset is ever
    /// held, halving peak build memory versus copy-based ingest.
    ///
    /// # Errors
    /// Returns [`IndexError::BadDataset`] for an empty buffer or one that
    /// is not a whole number of series.
    pub fn build_owned(
        summarization: S,
        data: Vec<f32>,
        config: IndexConfig,
    ) -> Result<Self, IndexError> {
        let pool = ExecPool::shared(config.num_threads.max(1));
        Self::build_with_pool(summarization, data, config, pool)
    }

    /// [`Index::build_owned`] on a caller-supplied worker pool, so a
    /// server embedding several indexes can run them all on one set of
    /// threads. The pool's lane count decides the build parallelism
    /// (`config.num_threads` only sizes pools the index creates itself).
    ///
    /// # Errors
    /// Returns [`IndexError::BadDataset`] for an empty buffer or one that
    /// is not a whole number of series.
    pub fn build_with_pool(
        summarization: S,
        mut data: Vec<f32>,
        config: IndexConfig,
        pool: Arc<ExecPool>,
    ) -> Result<Self, IndexError> {
        let n = summarization.series_len();
        if n == 0 || data.is_empty() {
            return Err(IndexError::BadDataset("empty dataset".into()));
        }
        if data.len() % n != 0 {
            return Err(IndexError::BadDataset(format!(
                "buffer of {} floats is not a multiple of series length {n}",
                data.len()
            )));
        }
        let n_series = data.len() / n;
        if n_series > u32::MAX as usize {
            // Row ids, storage slots and leaf row lists are all `u32`;
            // past that the silent casts below would truncate.
            return Err(IndexError::TooManyRows { rows: n_series });
        }
        let l = summarization.word_len();
        let symbol_bits = summarization.symbol_bits();
        if l > 64 {
            return Err(IndexError::BadDataset("word length > 64 unsupported".into()));
        }

        // --- Phase 1: normalize + summarize (parallel, Figure 7 "Transformation").
        let t0 = Instant::now();
        let mut words = vec![0u8; n_series * l];
        let mut keys = vec![0u64; n_series];
        let lanes = pool.threads();
        let rows_per_chunk = n_series.div_ceil(lanes);
        pool.run(|scope| {
            let summarization = &summarization;
            for ((data_chunk, words_chunk), keys_chunk) in data
                .chunks_mut(rows_per_chunk * n)
                .zip(words.chunks_mut(rows_per_chunk * l))
                .zip(keys.chunks_mut(rows_per_chunk))
            {
                scope.spawn(move || {
                    let mut transformer = summarization.transformer();
                    for ((series, word), key) in data_chunk
                        .chunks_mut(n)
                        .zip(words_chunk.chunks_mut(l))
                        .zip(keys_chunk.iter_mut())
                    {
                        znormalize(series);
                        transformer.word_into(series, word);
                        *key = root_key(word, symbol_bits);
                    }
                });
            }
        });
        let transform_secs = t0.elapsed().as_secs_f64();

        // --- Phase 2: group rows by root key.
        let t1 = Instant::now();
        let mut groups: HashMap<u64, Vec<u32>> = HashMap::new();
        for (row, &key) in keys.iter().enumerate() {
            // Lossless: row < n_series, checked against u32::MAX above.
            groups.entry(key).or_default().push(row as u32);
        }
        let groups: Vec<(u64, Vec<u32>)> = groups.into_iter().collect();

        // --- Phase 3: build subtrees in parallel (Figure 7 "Indexing").
        // Pool lanes claim root-child groups off an atomic counter; each
        // subtree is independent, so there is no contention beyond the
        // counter and the result vector.
        let next_group = AtomicUsize::new(0);
        let done = parking_lot::Mutex::new(Vec::with_capacity(groups.len()));
        pool.broadcast(|_| loop {
            let g = next_group.fetch_add(1, Ordering::Relaxed);
            if g >= groups.len() {
                break;
            }
            let (key, rows) = &groups[g];
            let subtree = build_subtree(*key, rows.clone(), &words, l, symbol_bits, &config);
            done.lock().push(subtree);
        });
        let mut subtrees = done.into_inner();
        subtrees.sort_by_key(|s| s.key);

        // --- Phase 4: pack leaves. Storage starts in row order (identity
        // slot maps); `repack_leaves` permutes it into leaf-contiguous
        // order and builds the per-leaf SoA word blocks plus the
        // per-subtree collect blocks.
        let query_env = sofa_summaries::QueryEnv::new(&summarization);
        let quant_enabled = std::sync::atomic::AtomicBool::new(config.quant_refine);
        let mut index = Index {
            summarization,
            config,
            pool,
            data: data.into(),
            words: words.into(),
            row_to_slot: (0..n_series as u32).collect(),
            slot_to_row: (0..n_series as u32).collect(),
            subtrees,
            series_len: n,
            word_len: l,
            build_breakdown: (0.0, 0.0),
            counters: crate::stats::KernelCounters::default(),
            query_env,
            quant_grid: None,
            quant_enabled,
            scratches: parking_lot::Mutex::new(Vec::with_capacity(lanes + 2)),
            unpacked_leaves: 0,
            total_leaves: 0,
        };
        index.repack_leaves();
        let tree_secs = t1.elapsed().as_secs_f64();
        index.build_breakdown = (transform_secs, tree_secs);
        Ok(index)
    }

    /// Rebuilds the leaf-contiguous storage layout: permutes the series
    /// and word arenas so every leaf's candidates occupy one contiguous
    /// run of storage slots (in leaf order), rebuilds each leaf's
    /// structure-of-arrays [`sofa_summaries::WordBlock`] for the batched
    /// lower-bound sweep, and rebuilds each subtree's
    /// [`crate::CollectBlock`] so the collect phase prices leaves 8-wide
    /// again.
    ///
    /// The bulk build calls this automatically. Online inserts instead
    /// trigger the cheaper [`Index::repack_incremental`] (when
    /// [`crate::IndexConfig::auto_repack_pct`] is set, the default);
    /// call this full variant to force every block to rebuild — e.g.
    /// after changing assumptions about the stored layout. The
    /// permutation is applied in place (cycle-walking with one temporary
    /// row), so no second copy of the dataset is ever held.
    pub fn repack_leaves(&mut self) {
        self.repack_core(true);
    }

    /// Incremental repack: restores the packed layout like
    /// [`Index::repack_leaves`], but only subtrees with stale lanes
    /// (leaves touched by online inserts or splits) rebuild their word
    /// and collect blocks. Untouched subtrees reuse their existing blocks
    /// — their arena runs are either left in place entirely or shifted by
    /// a constant (when an earlier subtree grew), which only updates each
    /// pack's start slot. This is what the auto-repack trigger runs.
    ///
    /// Cost model: every part of the repack scales with the *touched*
    /// portion of the arena. Subtrees are stored in key order, so all
    /// moved rows live at or above the first stale subtree's base slot:
    /// the slot assignment, the permutation's cycle scan and the data
    /// movement all run over that suffix only, and the clean prefix is
    /// never read or written.
    pub fn repack_incremental(&mut self) {
        self.repack_core(false);
    }

    /// The one repack implementation (see [`Index::repack_leaves`] /
    /// [`Index::repack_incremental`]): `full` rebuilds every subtree's
    /// blocks, `!full` only the stale ones.
    fn repack_core(&mut self, full: bool) {
        let n = self.series_len;
        let l = self.word_len;
        let total = self.slot_to_row.len();
        // Everything before the first stale subtree is untouched: subtrees
        // sit in key order, size changes always mark a subtree stale
        // (inserts, splits, and brand-new subtrees all do), so the clean
        // prefix keeps its exact cumulative bases — and every moved or
        // appended row's current slot lies at or above `scan_lo`, the
        // first stale subtree's base. The slot maps, the permutation and
        // the data movement below all operate on that suffix only.
        let first_stale = if full {
            0
        } else {
            self.subtrees.iter().position(|st| st.stale_leaves > 0).unwrap_or(self.subtrees.len())
        };
        // Slot assignment: leaves in (subtree, arena) order, rows in leaf
        // order. `bases[s]` is the first slot of subtree `s`;
        // `old_bases[s]` is where its run currently starts (the first
        // leaf's pack), used to shift clean subtrees without rebuilding.
        let mut suffix_rows: Vec<u32> = Vec::new();
        let mut bases: Vec<usize> = Vec::with_capacity(self.subtrees.len());
        let mut old_bases: Vec<Option<u32>> = Vec::with_capacity(self.subtrees.len());
        let mut leaves = 0usize;
        let mut cursor = 0usize;
        let mut scan_lo = total;
        for (si, st) in self.subtrees.iter().enumerate() {
            bases.push(cursor);
            if si == first_stale {
                scan_lo = cursor;
            }
            let mut first_pack = None;
            for node in &st.nodes {
                if let NodeKind::Leaf { rows, pack } = &node.kind {
                    if first_pack.is_none() {
                        first_pack = pack.as_ref().map(|p| p.start);
                    }
                    if si >= first_stale {
                        suffix_rows.extend_from_slice(rows);
                    }
                    cursor += rows.len();
                    leaves += 1;
                }
            }
            old_bases.push(first_pack);
        }
        self.total_leaves = leaves;
        self.unpacked_leaves = 0;
        debug_assert_eq!(cursor, total);
        debug_assert_eq!(suffix_rows.len(), total - scan_lo);
        for (i, &row) in suffix_rows.iter().enumerate() {
            debug_assert!(
                self.row_to_slot[row as usize] as usize >= scan_lo,
                "row {row} of a stale subtree sits below the clean prefix"
            );
            // Lossless: slots are bounded by the row count, which the
            // build rejected past u32::MAX.
            self.row_to_slot[row as usize] = (scan_lo + i) as u32;
        }
        // In-place permutation of the suffix of both arenas (in
        // suffix-local slot coordinates): content currently at storage
        // slot `scan_lo + i` moves to `scan_lo + dest[i]`. Fixed points
        // (runs that keep their slots) are skipped without touching the
        // data; the clean prefix is not even scanned.
        let dest: Vec<u32> = self.slot_to_row[scan_lo..]
            .iter()
            .map(|&row| self.row_to_slot[row as usize] - scan_lo as u32)
            .collect();
        if scan_lo < total {
            // `make_mut` promotes mapped (snapshot-opened) arenas to owned
            // copies; guarded so a clean repack of a mapped index stays
            // zero-copy.
            let data = self.data.make_mut();
            let words = self.words.make_mut();
            permute_rows(&mut data[scan_lo * n..], &mut words[scan_lo * l..], n, l, &dest);
        }
        self.slot_to_row[scan_lo..].copy_from_slice(&suffix_rows);

        // Word blocks and collect blocks, one subtree batch per pool lane
        // (subtrees are disjoint, so `chunks_mut` hands each lane its own
        // slice).
        let quant_on = self.config.quant_refine && n <= crate::node::QUANT_REFINE_MAX_LEN && n > 0;
        if quant_on && self.quant_grid.is_none() {
            // Train the index-wide quantizer once, on a strided row sample
            // (value ranges converge long before the full arena is seen;
            // rows outside the sampled ranges clamp and stay sound). The
            // grid then serves every leaf encode and every query.
            const GRID_SAMPLE_MAX_ROWS: usize = 1 << 16;
            let total_rows = self.data.len() / n;
            self.quant_grid = if total_rows <= GRID_SAMPLE_MAX_ROWS {
                sofa_summaries::QuantGrid::train(&self.data, n)
            } else {
                let stride = total_rows.div_ceil(GRID_SAMPLE_MAX_ROWS);
                let mut sample = Vec::with_capacity(total_rows.div_ceil(stride) * n);
                for r in (0..total_rows).step_by(stride) {
                    sample.extend_from_slice(&self.data[r * n..(r + 1) * n]);
                }
                sofa_summaries::QuantGrid::train(&sample, n)
            };
        }
        let words = &self.words;
        let data = &self.data;
        let quant_grid = if quant_on { self.quant_grid.as_ref() } else { None };
        let summarization: &dyn Summarization = &self.summarization;
        let collect_levels = self.config.collect_levels;
        let per_lane = self.subtrees.len().div_ceil(self.pool.threads()).max(1);
        self.pool.run(|scope| {
            for ((chunk, base_chunk), old_base_chunk) in self
                .subtrees
                .chunks_mut(per_lane)
                .zip(bases.chunks(per_lane))
                .zip(old_bases.chunks(per_lane))
            {
                scope.spawn(move || {
                    let mut rebuilt = vec![false; chunk.len()];
                    for ((i, (st, &base)), &old_base) in chunk
                        .iter_mut()
                        .zip(base_chunk.iter())
                        .enumerate()
                        .zip(old_base_chunk.iter())
                    {
                        if !full && st.stale_leaves == 0 {
                            if let Some(old) = old_base {
                                // Clean subtree: every leaf is packed and
                                // no label changed since its blocks were
                                // built, so the word/collect blocks are
                                // reused verbatim. Its contiguous run may
                                // have shifted as a whole (an earlier
                                // subtree grew); only the start slots
                                // need the delta.
                                let delta = base as i64 - i64::from(old);
                                if delta != 0 {
                                    for node in st.nodes.iter_mut() {
                                        if let NodeKind::Leaf { pack: Some(pack), .. } =
                                            &mut node.kind
                                        {
                                            // Lossless: the shifted start is
                                            // this run's new base slot, a
                                            // valid slot index < u32::MAX.
                                            pack.start = (i64::from(pack.start) + delta) as u32;
                                        }
                                    }
                                }
                                continue;
                            }
                        }
                        rebuilt[i] = true;
                        let mut next = base;
                        for node in st.nodes.iter_mut() {
                            if let NodeKind::Leaf { rows, pack } = &mut node.kind {
                                let start = next;
                                next += rows.len();
                                let block = sofa_summaries::WordBlock::build(
                                    summarization,
                                    &words[start * l..next * l],
                                );
                                // The quant codes are built in a second
                                // pass below: a leaf's codes are ~4x its
                                // word block, so allocating them here
                                // would interleave the word-sweep stream
                                // (every query walks consecutive leaves'
                                // word blocks) with cold code pages.
                                // Lossless: start < n_series <= u32::MAX.
                                *pack = Some(crate::node::LeafPack {
                                    start: start as u32,
                                    block,
                                    quant: None,
                                });
                            }
                        }
                        // Wide flat forests (thousands of single-leaf
                        // subtrees) never read a collect block — the
                        // query path prices those roots with the RootLbd
                        // XOR gate alone — so building one would only
                        // cost memory and scan locality.
                        st.collect = if st.nodes.len() > 1 {
                            Some(crate::node::CollectBlock::build(
                                summarization,
                                st,
                                collect_levels,
                            ))
                        } else {
                            None
                        };
                        st.stale_leaves = 0;
                    }
                    if let Some(grid) = quant_grid {
                        // Deferred quant pass: only now that every rebuilt
                        // leaf's word/collect blocks sit contiguously does
                        // the tier allocate its (much larger) code blocks.
                        for (st, &was_rebuilt) in chunk.iter_mut().zip(rebuilt.iter()) {
                            if !was_rebuilt {
                                continue;
                            }
                            for node in st.nodes.iter_mut() {
                                if let NodeKind::Leaf { rows, pack: Some(pack) } = &mut node.kind {
                                    let start = pack.start as usize;
                                    pack.quant = sofa_summaries::QuantBlock::build(
                                        grid,
                                        &data[start * n..(start + rows.len()) * n],
                                        n,
                                    );
                                }
                            }
                        }
                    }
                });
            }
        });
    }

    /// The subtree forest (read-only).
    #[must_use]
    pub fn subtrees(&self) -> &[Subtree] {
        &self.subtrees
    }
}

/// Applies the slot permutation `dest` (content at slot `old` moves to
/// slot `dest[old]`) to both arenas in place, walking permutation cycles
/// with one temporary row each — peak extra memory is one series plus one
/// word, never a second dataset copy.
fn permute_rows(data: &mut [f32], words: &mut [u8], n: usize, l: usize, dest: &[u32]) {
    let count = dest.len();
    debug_assert_eq!(data.len(), count * n);
    debug_assert_eq!(words.len(), count * l);
    let mut visited = vec![false; count];
    let mut tmp_series = vec![0f32; n];
    let mut tmp_word = vec![0u8; l];
    for start in 0..count {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut slot = dest[start] as usize;
        if slot == start {
            continue;
        }
        // Lift the cycle's first row, then bubble it around: each step
        // deposits the in-hand row at its destination and picks up the
        // displaced one.
        tmp_series.copy_from_slice(&data[start * n..(start + 1) * n]);
        tmp_word.copy_from_slice(&words[start * l..(start + 1) * l]);
        while slot != start {
            visited[slot] = true;
            for (held, stored) in tmp_series.iter_mut().zip(data[slot * n..].iter_mut()) {
                std::mem::swap(held, stored);
            }
            for (held, stored) in tmp_word.iter_mut().zip(words[slot * l..].iter_mut()) {
                std::mem::swap(held, stored);
            }
            slot = dest[slot] as usize;
        }
        data[start * n..(start + 1) * n].copy_from_slice(&tmp_series);
        words[start * l..(start + 1) * l].copy_from_slice(&tmp_word);
    }
}

/// Builds one subtree over `rows`, whose words all share root key `key`.
fn build_subtree(
    key: u64,
    rows: Vec<u32>,
    words: &[u8],
    l: usize,
    symbol_bits: u8,
    config: &IndexConfig,
) -> Subtree {
    // Root-child label: one bit per position, taken from the key.
    let prefixes: Vec<u8> = (0..l).map(|j| ((key >> j) & 1) as u8).collect();
    let bits = vec![1u8; l];
    let mut nodes = Vec::new();
    build_node(rows, prefixes, bits, &mut nodes, words, l, symbol_bits, config.leaf_capacity);
    // The collect block is attached by `repack_leaves` (phase 4), which
    // runs right after the subtrees are assembled.
    Subtree { key, nodes, collect: None, stale_leaves: 0 }
}

/// Recursively materializes the node for `rows`, returning its arena id.
#[allow(clippy::too_many_arguments)]
fn build_node(
    rows: Vec<u32>,
    prefixes: Vec<u8>,
    bits: Vec<u8>,
    arena: &mut Vec<Node>,
    words: &[u8],
    l: usize,
    symbol_bits: u8,
    leaf_capacity: usize,
) -> u32 {
    let id = u32::try_from(arena.len()).expect("node-id space (u32) exhausted");
    if rows.len() <= leaf_capacity {
        arena.push(Node { prefixes, bits, kind: NodeKind::Leaf { rows, pack: None } });
        return id;
    }
    // Balanced split (iSAX 2.0): among positions with spare cardinality,
    // pick the one whose next bit divides the rows most evenly. Positions
    // where every row agrees on the next bit cannot separate anything.
    let mut best: Option<(usize, usize)> = None; // (imbalance, position)
    for j in 0..l {
        if bits[j] >= symbol_bits {
            continue;
        }
        let shift = symbol_bits - bits[j] - 1;
        let ones = rows.iter().filter(|&&r| (words[r as usize * l + j] >> shift) & 1 == 1).count();
        let zeros = rows.len() - ones;
        if ones == 0 || zeros == 0 {
            continue;
        }
        let imbalance = ones.abs_diff(zeros);
        let better = match best {
            None => true,
            Some((bi, bj)) => imbalance < bi || (imbalance == bi && bits[j] < bits[bj]),
        };
        if better {
            best = Some((imbalance, j));
        }
    }
    let Some((_, split_pos)) = best else {
        // No position separates the rows (identical words up to full
        // cardinality): keep an over-full leaf, as iSAX-family indices do.
        arena.push(Node { prefixes, bits, kind: NodeKind::Leaf { rows, pack: None } });
        return id;
    };

    let shift = symbol_bits - bits[split_pos] - 1;
    let (zeros, ones): (Vec<u32>, Vec<u32>) =
        rows.iter().partition(|&&r| (words[r as usize * l + split_pos] >> shift) & 1 == 0);

    // Reserve the inner node's slot before recursing so children ids are
    // stable.
    arena.push(Node {
        prefixes: prefixes.clone(),
        bits: bits.clone(),
        kind: NodeKind::Inner { left: 0, right: 0, split_pos: split_pos as u16 },
    });

    let child_label = |bit: u8| {
        let mut p = prefixes.clone();
        let mut b = bits.clone();
        p[split_pos] = (p[split_pos] << 1) | bit;
        b[split_pos] += 1;
        (p, b)
    };
    let (lp, lb) = child_label(0);
    let left = build_node(zeros, lp, lb, arena, words, l, symbol_bits, leaf_capacity);
    let (rp, rb) = child_label(1);
    let right = build_node(ones, rp, rb, arena, words, l, symbol_bits, leaf_capacity);
    match &mut arena[id as usize].kind {
        NodeKind::Inner { left: lslot, right: rslot, .. } => {
            *lslot = left;
            *rslot = right;
        }
        NodeKind::Leaf { .. } => unreachable!("slot was reserved as inner"),
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use sofa_summaries::{ISax, SaxConfig};

    fn dataset(count: usize, n: usize) -> Vec<f32> {
        let mut data = Vec::with_capacity(count * n);
        for r in 0..count {
            for t in 0..n {
                let x = t as f32;
                data.push(
                    (x * 0.2 + r as f32).sin() + 0.5 * (x * (0.5 + (r % 7) as f32 * 0.2)).cos(),
                );
            }
        }
        data
    }

    fn sax_index(count: usize, n: usize, leaf: usize, threads: usize) -> Index<ISax> {
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        Index::build(
            sax,
            &dataset(count, n),
            IndexConfig::with_threads(threads).leaf_capacity(leaf),
        )
        .expect("build")
    }

    #[test]
    fn every_row_lands_in_exactly_one_leaf() {
        let idx = sax_index(500, 64, 32, 2);
        let mut seen = vec![false; 500];
        for st in idx.subtrees() {
            for leaf in st.leaves() {
                for &r in leaf.rows() {
                    assert!(!seen[r as usize], "row {r} appears twice");
                    seen[r as usize] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "some rows missing from the tree");
    }

    #[test]
    fn leaves_respect_capacity_or_are_unsplittable() {
        let idx = sax_index(1000, 64, 50, 2);
        for st in idx.subtrees() {
            for leaf in st.leaves() {
                if leaf.rows().len() > 50 {
                    // Over-full leaves are only allowed when no position
                    // can separate the rows.
                    let rows = leaf.rows();
                    let l = 8;
                    #[allow(clippy::needless_range_loop)]
                    for j in 0..l {
                        if leaf.bits[j] >= 8 {
                            continue;
                        }
                        let shift = 8 - leaf.bits[j] - 1;
                        let ones = rows
                            .iter()
                            .filter(|&&r| (idx.word(r as usize)[j] >> shift) & 1 == 1)
                            .count();
                        assert!(
                            ones == 0 || ones == rows.len(),
                            "splittable over-full leaf (pos {j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn node_labels_cover_their_rows() {
        // Every row's word must match its leaf's prefix at every position.
        let idx = sax_index(600, 64, 40, 3);
        for st in idx.subtrees() {
            for leaf in st.leaves() {
                for &r in leaf.rows() {
                    let w = idx.word(r as usize);
                    #[allow(clippy::needless_range_loop)]
                    for j in 0..8 {
                        let b = leaf.bits[j];
                        if b == 0 {
                            continue;
                        }
                        assert_eq!(
                            crate::node::symbol_prefix(w[j], b, 8),
                            leaf.prefixes[j],
                            "row {r} violates leaf label at position {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn build_deterministic_across_thread_counts() {
        // The tree structure may vary with threads in MESSI, but our
        // bulk build is deterministic: same groups, same splits.
        let a = sax_index(400, 64, 30, 1);
        let b = sax_index(400, 64, 30, 4);
        assert_eq!(a.subtrees().len(), b.subtrees().len());
        for (x, y) in a.subtrees().iter().zip(b.subtrees().iter()) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.n_rows(), y.n_rows());
        }
    }

    #[test]
    fn words_are_stored_per_row() {
        let idx = sax_index(50, 64, 10, 2);
        assert_eq!(idx.word(0).len(), 8);
        assert_eq!(idx.n_series(), 50);
        // Words must correspond to the (z-normalized) stored series.
        let mut tr = idx.summarization().transformer();
        for r in 0..50 {
            let expect = tr.word(idx.series(r), 8);
            assert_eq!(idx.word(r), &expect[..], "row {r}");
        }
    }

    #[test]
    fn too_many_rows_error_is_typed_and_displayed() {
        let e = IndexError::TooManyRows { rows: 5_000_000_000 };
        assert_eq!(e.clone(), IndexError::TooManyRows { rows: 5_000_000_000 });
        assert!(e.to_string().contains("u32 row-id space"), "{e}");
    }

    #[test]
    fn rejects_bad_input() {
        let sax = ISax::new(64, &SaxConfig { word_len: 8, alphabet: 256 });
        assert!(matches!(
            Index::build(sax, &[], IndexConfig::default()),
            Err(IndexError::BadDataset(_))
        ));
        let sax = ISax::new(64, &SaxConfig { word_len: 8, alphabet: 256 });
        assert!(matches!(
            Index::build(sax, &vec![0.0; 65], IndexConfig::default()),
            Err(IndexError::BadDataset(_))
        ));
    }

    #[test]
    fn build_owned_matches_borrowing_build() {
        let n = 64;
        let data = dataset(300, n);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let a = Index::build(sax, &data, IndexConfig::with_threads(2).leaf_capacity(30))
            .expect("build");
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let b = Index::build_owned(sax, data, IndexConfig::with_threads(2).leaf_capacity(30))
            .expect("build_owned");
        assert_eq!(a.n_series(), b.n_series());
        assert_eq!(a.subtrees().len(), b.subtrees().len());
        for r in 0..a.n_series() {
            assert_eq!(a.word(r), b.word(r), "row {r}");
            assert_eq!(a.series(r), b.series(r), "row {r}");
        }
    }

    #[test]
    fn build_with_shared_pool_reuses_it() {
        let n = 64;
        let pool = sofa_exec::ExecPool::shared(2);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let idx = Index::build_with_pool(
            sax,
            dataset(200, n),
            IndexConfig::with_threads(2).leaf_capacity(25),
            Arc::clone(&pool),
        )
        .expect("build");
        assert!(Arc::ptr_eq(idx.pool(), &pool));
        assert_eq!(idx.pool().threads(), 2);
    }

    #[test]
    fn build_breakdown_reports_phases() {
        let idx = sax_index(200, 64, 20, 2);
        let (transform, tree) = idx.build_breakdown();
        assert!(transform >= 0.0 && tree >= 0.0);
    }

    /// Structural invariant of the packed layout: every packed leaf's
    /// contiguous slot run holds exactly its rows, in order.
    fn assert_layout_consistent(idx: &Index<ISax>) {
        for st in idx.subtrees() {
            for leaf in st.leaves() {
                let pack = leaf.pack().expect("leaf must be packed");
                assert_eq!(pack.block.n(), leaf.rows().len());
                for (i, &row) in leaf.rows().iter().enumerate() {
                    let slot = pack.start as usize + i;
                    assert_eq!(idx.slot_to_row[slot], row, "slot {slot} holds the wrong row");
                    assert_eq!(idx.row_to_slot[row as usize] as usize, slot);
                }
            }
        }
    }

    #[test]
    fn incremental_repack_restores_packing_and_exactness() {
        let n = 64;
        let data = dataset(700, n);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let mut idx = Index::build(
            sax,
            &data[..400 * n],
            IndexConfig::with_threads(2).leaf_capacity(12).auto_repack_pct(None),
        )
        .expect("build");
        idx.insert_all(&data[400 * n..]).expect("insert");
        let before = idx.stats();
        assert!(before.packed_leaves < before.leaves, "inserts must leave stale leaves");
        assert!(idx.subtrees().iter().any(|st| st.stale_leaves > 0));

        idx.repack_incremental();
        let after = idx.stats();
        assert_eq!(after.packed_leaves, after.leaves, "incremental repack must pack everything");
        assert!(idx.subtrees().iter().all(|st| st.stale_leaves == 0));
        assert_layout_consistent(&idx);

        // Answers agree with a bulk-built index over the same data.
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let bulk = Index::build(sax, &data, IndexConfig::with_threads(2).leaf_capacity(12))
            .expect("build");
        for q in dataset(8, n).chunks(n) {
            let a = idx.knn(q, 5).expect("query");
            let b = bulk.knn(q, 5).expect("query");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.row, y.row);
            }
        }
    }

    #[test]
    fn incremental_repack_is_a_noop_on_a_clean_index() {
        let n = 64;
        let idx0 = sax_index(500, n, 20, 2);
        let starts: Vec<u32> = idx0
            .subtrees()
            .iter()
            .flat_map(|st| st.leaves().map(|l| l.pack().unwrap().start))
            .collect();
        let mut idx = idx0;
        idx.repack_incremental();
        let after: Vec<u32> = idx
            .subtrees()
            .iter()
            .flat_map(|st| st.leaves().map(|l| l.pack().unwrap().start))
            .collect();
        assert_eq!(starts, after, "clean subtrees must keep their runs");
        assert_layout_consistent(&idx);
    }

    #[test]
    fn deep_tree_builds_collect_levels() {
        // Hand every row the same root key region by using one shared
        // prototype shape: a concentrated tree deep enough for levels.
        let n = 64;
        let mut data = Vec::with_capacity(1200 * n);
        for r in 0..1200 {
            for t in 0..n {
                // One square-wave base shape (segment signs, hence root
                // keys, stay fixed) with per-row amplitude modulation
                // spanning several quantile boundaries: every row lands
                // in one root subtree, which then splits deep.
                let base = if (t / 8) % 2 == 0 { 1.0f32 } else { -1.0 };
                let x = t as f32;
                data.push(base * (1.0 + 0.6 * ((x * 0.1 + r as f32 * 0.7).sin())));
            }
        }
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 256 });
        let idx =
            Index::build(sax, &data, IndexConfig::with_threads(1).leaf_capacity(8)).expect("build");
        let deep = idx
            .subtrees()
            .iter()
            .filter_map(|st| st.collect.as_ref())
            .find(|cb| !cb.levels.is_empty())
            .expect("a concentrated tree must build level blocks");
        // Spans partition sanity: each level's spans are disjoint,
        // ordered, and within the fringe.
        for lanes in &deep.levels {
            let mut prev_end = 0u32;
            for &(lo, hi) in &lanes.leaf_spans {
                assert!(lo < hi, "empty span");
                assert!(lo >= prev_end, "overlapping spans");
                assert!(hi as usize <= deep.node_ids.len());
                prev_end = hi;
            }
        }
        // The hierarchy engages at query time.
        let (_, stats) = idx.knn_with_stats(&data[..n], 3).expect("query");
        assert!(stats.collect_level_groups_swept > 0, "level sweep never ran: {stats:?}");
    }

    #[test]
    fn subtrees_sorted_by_key() {
        let idx = sax_index(800, 64, 25, 2);
        let keys: Vec<u64> = idx.subtrees().iter().map(|s| s.key).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
