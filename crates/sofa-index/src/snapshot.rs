//! Crash-safe persistence: atomic snapshots, mmap-backed opens.
//!
//! A snapshot is a single versioned file laid out arena-first so that
//! [`Index::open`] can serve straight out of a memory mapping with zero
//! deserialization of the two big arenas (series data, words) — the
//! FAISS-style "attach, don't rebuild" pattern. Small structures (tree
//! topology, leaf packs, collect blocks, quantizer) are rehydrated into
//! their owned in-memory forms; they are a small fraction of the file.
//!
//! ## File format (version 1)
//!
//! ```text
//! offset 0   magic            b"SOFASNAP"
//!        8   format version   u32
//!       12   endianness tag   u32 (0x0A0B0C0D, read natively: a foreign-
//!                             endian file shows a scrambled tag and is
//!                             rejected — all values are writer-native)
//!       16   summarization    u32 (1 = SFA, 2 = iSAX)
//!       20   section count    u32
//!       24   section table    count × 32 bytes:
//!                             id u32, reserved u32, offset u64, len u64,
//!                             FNV-1a-64 checksum u64
//!        …   header checksum  u64 (FNV-1a over everything above)
//! ```
//!
//! Sections follow, each 64-byte aligned (so mapped `f32`/`u32` arenas
//! are always correctly aligned) and independently checksummed. Every
//! validation — magic, version, endianness, header checksum, section
//! bounds, section checksums, layout parameters, structural invariants —
//! runs **before** any pointer into the mapping is formed or any decoded
//! value is trusted; corrupt, truncated and foreign files fail closed
//! with a typed [`IndexError`], never a panic.
//!
//! ## Durability
//!
//! [`Index::snapshot`] writes to a sibling `<name>.tmp`, fsyncs it,
//! atomically renames it over the destination and fsyncs the parent
//! directory. A crash at any point leaves either the old file or the new
//! one, never a torn mix; a leftover `.tmp` is inert (opens of it fail
//! closed like any partial file) and is removed on the next snapshot.

use crate::arena::Arena;
use crate::config::IndexConfig;
use crate::node::{CollectBlock, LeafPack, LevelLanes, Node, NodeKind, Subtree};
use crate::{Index, IndexError};
use sofa_exec::{failpoint, ExecPool};
use sofa_mmap::{Advice, Mmap};
use sofa_summaries::{
    CoeffPos, ISax, LevelBlocks, McbModel, NodeBlock, QuantBlock, QuantGrid, SaxConfig, Sfa,
    Summarization, WordBlock,
};
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// First 8 bytes of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SOFASNAP";
/// The one format version this build writes and reads.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;
/// Failpoint fired before each section write (torn-write injection).
pub const SNAPSHOT_WRITE_FAILPOINT: &str = "sofa-index::snapshot::write";
/// Failpoint fired before the final atomic rename.
pub const SNAPSHOT_RENAME_FAILPOINT: &str = "sofa-index::snapshot::rename";

const ENDIAN_TAG: u32 = 0x0A0B_0C0D;
const SECTION_ALIGN: u64 = 64;
const HEADER_FIXED: usize = 24;
const TABLE_ENTRY: usize = 32;

const SEC_META: u32 = 1;
const SEC_SUMM: u32 = 2;
const SEC_DATA: u32 = 3;
const SEC_WORDS: u32 = 4;
const SEC_MAPPING: u32 = 5;
const SEC_TREE: u32 = 6;
const SEC_PACKS: u32 = 7;
const SEC_COLLECT: u32 = 8;
const SEC_QUANT: u32 = 9;

fn section_name(id: u32) -> &'static str {
    match id {
        SEC_META => "meta",
        SEC_SUMM => "summarization",
        SEC_DATA => "data",
        SEC_WORDS => "words",
        SEC_MAPPING => "mapping",
        SEC_TREE => "tree",
        SEC_PACKS => "leaf-packs",
        SEC_COLLECT => "collect",
        SEC_QUANT => "quant",
        _ => "unknown",
    }
}

fn kind_name(kind: u32) -> &'static str {
    match kind {
        1 => "SFA",
        2 => "iSAX",
        _ => "unknown",
    }
}

/// Word-at-a-time FNV-1a 64 variant — dependency-free, good
/// torn-write/bit-flip detection. Folding 8 input bytes per multiply
/// keeps open-time verification of multi-gigabyte arenas around an
/// order of magnitude cheaper than the byte-serial form; this is a
/// format-defining function (writer and reader must agree), covered by
/// the version field.
fn fnv1a64(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut words = bytes.chunks_exact(8);
    for w in &mut words {
        let w = u64::from_ne_bytes(w.try_into().expect("8-byte chunk"));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    for &b in words.remainder() {
        h = (h ^ u64::from(b)).wrapping_mul(PRIME);
    }
    h
}

// ---------------------------------------------------------------------
// Error constructors (all snapshot failures are typed, never panics).

fn io_err(op: &str, detail: &dyn std::fmt::Display) -> IndexError {
    IndexError::SnapshotIo { op: op.to_string(), detail: detail.to_string() }
}

fn fmt_err(section: &str, detail: impl Into<String>) -> IndexError {
    IndexError::SnapshotFormat { section: section.to_string(), detail: detail.into() }
}

fn corrupt(section: &str, detail: impl Into<String>) -> IndexError {
    IndexError::SnapshotCorrupt { section: section.to_string(), detail: detail.into() }
}

fn layout(section: &str, detail: impl Into<String>) -> IndexError {
    IndexError::SnapshotLayout { section: section.to_string(), detail: detail.into() }
}

// ---------------------------------------------------------------------
// Little encode helpers (writer-native byte order throughout).

/// `usize` → `u64`, lossless on every supported target (≤ 64-bit).
fn u64_of(x: usize) -> u64 {
    x as u64
}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_ne_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_ne_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_ne_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_ne_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_ne_bytes());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u64(out, u64_of(n));
}

fn put_u32_slice(out: &mut Vec<u8>, vals: &[u32]) {
    out.extend_from_slice(sofa_mmap::as_bytes(vals));
}

fn put_f32_slice(out: &mut Vec<u8>, vals: &[f32]) {
    out.extend_from_slice(sofa_mmap::as_bytes(vals));
}

fn put_f64_slice(out: &mut Vec<u8>, vals: &[f64]) {
    out.extend_from_slice(sofa_mmap::as_bytes(vals));
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn align_up(x: u64, a: u64) -> u64 {
    x.div_ceil(a) * a
}

// ---------------------------------------------------------------------
// Bounds-checked sequential reader over one section's bytes.

/// Sequential, bounds-checked reader over one snapshot section. Every
/// read is validated against the section's extent; failures surface as
/// [`IndexError::SnapshotCorrupt`] naming the section. Used by the
/// built-in decoders and by [`SnapshotSummarization::decode_summarization`].
pub struct SectionReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> SectionReader<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        SectionReader { buf, pos: 0, section }
    }

    /// A typed corruption error anchored to this reader's section — for
    /// decoders to report semantic (not just bounds) failures.
    #[must_use]
    pub fn invalid(&self, detail: impl Into<String>) -> IndexError {
        corrupt(self.section, detail)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], IndexError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len()).ok_or_else(|| {
            self.invalid(format!("truncated: needed {n} bytes at offset {}", self.pos))
        })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], IndexError> {
        let b = self.take(N)?;
        b.try_into().map_err(|_| self.invalid("internal read-size mismatch"))
    }

    /// Reads one `u8`.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation.
    pub fn u8(&mut self) -> Result<u8, IndexError> {
        Ok(self.array::<1>()?[0])
    }

    /// Reads one native-endian `u16`.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation.
    pub fn u16(&mut self) -> Result<u16, IndexError> {
        Ok(u16::from_ne_bytes(self.array()?))
    }

    /// Reads one native-endian `u32`.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation.
    pub fn u32(&mut self) -> Result<u32, IndexError> {
        Ok(u32::from_ne_bytes(self.array()?))
    }

    /// Reads one native-endian `u64`.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation.
    pub fn u64(&mut self) -> Result<u64, IndexError> {
        Ok(u64::from_ne_bytes(self.array()?))
    }

    /// Reads one native-endian `f32`.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation.
    pub fn f32(&mut self) -> Result<f32, IndexError> {
        Ok(f32::from_ne_bytes(self.array()?))
    }

    /// Reads one native-endian `f64`.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation.
    pub fn f64(&mut self) -> Result<f64, IndexError> {
        Ok(f64::from_ne_bytes(self.array()?))
    }

    /// Reads a `u64` count and converts it to `usize` (checked).
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation or overflow.
    pub fn count(&mut self) -> Result<usize, IndexError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.invalid(format!("count {v} exceeds the address space")))
    }

    /// Like [`SectionReader::count`], additionally rejecting counts whose
    /// elements (each at least `elem_min_bytes` on disk) could not fit in
    /// the section's remaining bytes — so hostile counts can never drive
    /// huge allocations or long loops.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation, overflow, or an
    /// impossible count.
    pub fn bounded_count(&mut self, elem_min_bytes: usize) -> Result<usize, IndexError> {
        let n = self.count()?;
        let min = n
            .checked_mul(elem_min_bytes.max(1))
            .ok_or_else(|| self.invalid(format!("count {n} overflows the section extent")))?;
        if min > self.remaining() {
            return Err(self.invalid(format!(
                "count {n} cannot fit in the {} remaining section bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads `n` raw bytes into an owned buffer.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation.
    pub fn byte_vec(&mut self, n: usize) -> Result<Vec<u8>, IndexError> {
        Ok(self.take(n)?.to_vec())
    }

    fn elem_bytes(&mut self, n: usize, size: usize) -> Result<&'a [u8], IndexError> {
        let total = n
            .checked_mul(size)
            .ok_or_else(|| self.invalid(format!("element count {n} overflows the byte range")))?;
        self.take(total)
    }

    /// Reads `n` native-endian `u32` values.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation or overflow.
    pub fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, IndexError> {
        let bytes = self.elem_bytes(n, 4)?;
        Ok(bytes.chunks_exact(4).map(|c| u32::from_ne_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Reads `n` native-endian `f32` values.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation or overflow.
    pub fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, IndexError> {
        let bytes = self.elem_bytes(n, 4)?;
        Ok(bytes.chunks_exact(4).map(|c| f32::from_ne_bytes([c[0], c[1], c[2], c[3]])).collect())
    }

    /// Reads `n` native-endian `f64` values.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] on truncation or overflow.
    pub fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>, IndexError> {
        let bytes = self.elem_bytes(n, 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_ne_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect())
    }

    /// Asserts the section was consumed exactly — trailing bytes mean the
    /// decoder and the writer disagree about the structure.
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] when bytes remain.
    pub fn finish(self) -> Result<(), IndexError> {
        if self.pos != self.buf.len() {
            return Err(
                self.invalid(format!("{} trailing bytes after decode", self.buf.len() - self.pos))
            );
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Summarization (de)serialization.

/// Summarizations that can be persisted in a snapshot. Implemented for
/// [`Sfa`] (SOFA) and [`ISax`] (MESSI); the `KIND` tag in the header
/// keeps a file from being opened as the wrong model family.
pub trait SnapshotSummarization: Summarization + Sized {
    /// Stable numeric tag stored in the snapshot header.
    const KIND: u32;
    /// Human name of the kind, used in error messages.
    const KIND_NAME: &'static str;
    /// Appends the model's persistent state to `out`.
    fn encode_summarization(&self, out: &mut Vec<u8>);
    /// Rebuilds the model from its persisted state, validating every
    /// field it will later index with (so a tampered model can never
    /// cause a panic downstream).
    ///
    /// # Errors
    /// [`IndexError::SnapshotCorrupt`] (via [`SectionReader::invalid`])
    /// on any truncation or semantic violation.
    fn decode_summarization(r: &mut SectionReader<'_>) -> Result<Self, IndexError>;
}

impl SnapshotSummarization for Sfa {
    const KIND: u32 = 1;
    const KIND_NAME: &'static str = "SFA";

    fn encode_summarization(&self, out: &mut Vec<u8>) {
        let model = self.model();
        put_str(out, self.name());
        put_len(out, model.series_len);
        put_len(out, model.alphabet);
        put_len(out, model.positions.len());
        for p in &model.positions {
            put_u16(out, p.coeff);
            put_u8(out, u8::from(p.imag));
        }
        for bin in &model.bins {
            put_len(out, bin.len());
            put_f32_slice(out, bin);
        }
        put_len(out, model.weights.len());
        put_f32_slice(out, &model.weights);
        put_len(out, model.variances.len());
        put_f32_slice(out, &model.variances);
    }

    fn decode_summarization(r: &mut SectionReader<'_>) -> Result<Self, IndexError> {
        let name_len = r.bounded_count(1)?;
        let name = String::from_utf8(r.byte_vec(name_len)?)
            .map_err(|_| r.invalid("model name is not UTF-8"))?;
        let series_len = r.count()?;
        if series_len == 0 {
            return Err(r.invalid("series length is zero"));
        }
        let alphabet = r.count()?;
        if !(alphabet.is_power_of_two() && (2..=256).contains(&alphabet)) {
            return Err(r.invalid(format!("alphabet {alphabet} is not a power of two in [2, 256]")));
        }
        let word_len = r.bounded_count(3)?;
        if word_len == 0 || word_len > 64 {
            return Err(r.invalid(format!("word length {word_len} out of range 1..=64")));
        }
        let mut positions = Vec::with_capacity(word_len);
        for _ in 0..word_len {
            let coeff = r.u16()?;
            let imag = r.u8()?;
            if imag > 1 {
                return Err(r.invalid(format!("coefficient imag flag {imag} is not a bool")));
            }
            // `flat_index` = 2·coeff + imag indexes a spectrum of
            // 2·(series_len/2 + 1) floats; anything beyond would panic in
            // the transform path.
            if usize::from(coeff) > series_len / 2 {
                return Err(r.invalid(format!(
                    "coefficient index {coeff} exceeds the spectrum of length-{series_len} series"
                )));
            }
            positions.push(CoeffPos { coeff, imag: imag == 1 });
        }
        let mut bins = Vec::with_capacity(word_len);
        for j in 0..word_len {
            let bl = r.bounded_count(4)?;
            if bl != alphabet - 1 {
                return Err(r.invalid(format!(
                    "breakpoint table {j} holds {bl} entries, alphabet {alphabet} requires {}",
                    alphabet - 1
                )));
            }
            let table = r.f32_vec(bl)?;
            if table.iter().any(|v| !v.is_finite()) {
                return Err(r.invalid(format!("breakpoint table {j} contains non-finite values")));
            }
            if table.windows(2).any(|w| w[0] > w[1]) {
                return Err(r.invalid(format!("breakpoint table {j} is not sorted")));
            }
            bins.push(table);
        }
        let wl = r.bounded_count(4)?;
        if wl != word_len {
            return Err(r.invalid(format!("{wl} weights for {word_len} positions")));
        }
        let weights = r.f32_vec(wl)?;
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(r.invalid("weights must be finite and non-negative"));
        }
        let vl = r.bounded_count(4)?;
        let variances = r.f32_vec(vl)?;
        let model = McbModel { positions, bins, weights, series_len, alphabet, variances };
        Ok(Sfa::from_parts(model, name))
    }
}

impl SnapshotSummarization for ISax {
    const KIND: u32 = 2;
    const KIND_NAME: &'static str = "iSAX";

    fn encode_summarization(&self, out: &mut Vec<u8>) {
        put_len(out, self.series_len());
        put_len(out, self.word_len());
        put_len(out, self.alphabet());
    }

    fn decode_summarization(r: &mut SectionReader<'_>) -> Result<Self, IndexError> {
        let series_len = r.count()?;
        let word_len = r.count()?;
        let alphabet = r.count()?;
        if series_len == 0 {
            return Err(r.invalid("series length is zero"));
        }
        if word_len == 0 || word_len > 64 || word_len > series_len {
            return Err(r.invalid(format!(
                "word length {word_len} invalid for length-{series_len} series"
            )));
        }
        if !(alphabet.is_power_of_two() && (2..=256).contains(&alphabet)) {
            return Err(r.invalid(format!("alphabet {alphabet} is not a power of two in [2, 256]")));
        }
        Ok(ISax::new(series_len, &SaxConfig { word_len, alphabet }))
    }
}

// ---------------------------------------------------------------------
// Parsed header.

/// One entry of a snapshot's section table (see [`describe`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionInfo {
    /// Numeric section id.
    pub id: u32,
    /// Human name ("meta", "data", …).
    pub name: &'static str,
    /// Byte offset of the section in the file.
    pub offset: u64,
    /// Byte length of the section.
    pub len: u64,
    /// FNV-1a-64 checksum of the section bytes.
    pub checksum: u64,
}

/// The capability/config matrix of a snapshot: what an [`Index::open`]
/// of this file will support, decoded from its checksum-verified meta
/// section, plus the kernel tier this *process* would serve it with.
/// Returned inside [`SnapshotInfo`] so operators can audit a mapped
/// snapshot without opening it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotCapabilities {
    /// Rows (series) held by the index.
    pub n_rows: usize,
    /// Points per series.
    pub series_len: usize,
    /// Symbols per summarized word.
    pub word_len: usize,
    /// Maximum rows per tree leaf.
    pub leaf_capacity: usize,
    /// Depth of the hierarchical collect-block ladder (0 = fringe only).
    pub collect_levels: usize,
    /// Whether the config asks for the int8 quantized refine tier.
    pub quant_refine: bool,
    /// Whether that tier was actually enabled when the snapshot was cut
    /// (it self-disables when mispredictions make it unprofitable).
    pub quant_enabled: bool,
    /// Whether the file carries a quantizer grid + per-leaf codes at all.
    pub quant_grid_present: bool,
    /// Kernel tier dispatch resolves to in this process ("scalar",
    /// "portable", "avx2") — a property of the host, not the file.
    pub kernel_tier: &'static str,
}

/// Checksum-verified snapshot metadata, as returned by [`describe`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// Format version of the file.
    pub format_version: u32,
    /// Summarization kind tag (1 = SFA, 2 = iSAX).
    pub summarization_kind: u32,
    /// Total file length in bytes.
    pub file_len: u64,
    /// The section table, in file order.
    pub sections: Vec<SectionInfo>,
    /// What this snapshot supports once opened.
    pub capabilities: SnapshotCapabilities,
}

struct SectionEntry {
    id: u32,
    offset: usize,
    len: usize,
    checksum: u64,
}

fn header_u32(bytes: &[u8], off: usize) -> Result<u32, IndexError> {
    let b = bytes.get(off..off + 4).ok_or_else(|| fmt_err("header", "truncated header"))?;
    Ok(u32::from_ne_bytes([b[0], b[1], b[2], b[3]]))
}

fn header_u64(bytes: &[u8], off: usize) -> Result<u64, IndexError> {
    let b = bytes.get(off..off + 8).ok_or_else(|| fmt_err("header", "truncated header"))?;
    Ok(u64::from_ne_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

/// Validates magic, version, endianness, the header checksum, and every
/// section's bounds and checksum. Returns the summarization kind and the
/// verified table. Nothing in the file is trusted before this returns.
fn parse_and_verify(bytes: &[u8]) -> Result<(u32, Vec<SectionEntry>), IndexError> {
    if bytes.len() < HEADER_FIXED {
        return Err(fmt_err(
            "header",
            format!("file of {} bytes is too small to be a snapshot", bytes.len()),
        ));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(fmt_err("header", "bad magic — not a SOFA snapshot"));
    }
    let version = header_u32(bytes, 8)?;
    if version != SNAPSHOT_FORMAT_VERSION {
        return Err(fmt_err(
            "header",
            format!(
                "unsupported format version {version} (this build reads {SNAPSHOT_FORMAT_VERSION})"
            ),
        ));
    }
    let endian = header_u32(bytes, 12)?;
    if endian != ENDIAN_TAG {
        return Err(fmt_err("header", "snapshot was written with a different byte order"));
    }
    let kind = header_u32(bytes, 16)?;
    let n = header_u32(bytes, 20)?;
    if n == 0 || n > 64 {
        return Err(fmt_err("header", format!("implausible section count {n}")));
    }
    let n = n as usize;
    let table_end = HEADER_FIXED + TABLE_ENTRY * n;
    let header_len = table_end + 8;
    if bytes.len() < header_len {
        return Err(fmt_err("header", "truncated section table"));
    }
    let stored = header_u64(bytes, table_end)?;
    if fnv1a64(&bytes[..table_end]) != stored {
        return Err(corrupt("header", "header checksum mismatch"));
    }
    let mut entries = Vec::with_capacity(n);
    for i in 0..n {
        let base = HEADER_FIXED + TABLE_ENTRY * i;
        let id = header_u32(bytes, base)?;
        let name = section_name(id);
        if name == "unknown" {
            return Err(fmt_err("header", format!("unknown section id {id}")));
        }
        let offset = usize::try_from(header_u64(bytes, base + 8)?)
            .map_err(|_| fmt_err(name, "section offset exceeds the address space"))?;
        let len = usize::try_from(header_u64(bytes, base + 16)?)
            .map_err(|_| fmt_err(name, "section length exceeds the address space"))?;
        let checksum = header_u64(bytes, base + 24)?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= bytes.len())
            .ok_or_else(|| fmt_err(name, "section range out of bounds"))?;
        if offset < header_len {
            return Err(fmt_err(name, "section overlaps the header"));
        }
        if entries.iter().any(|e: &SectionEntry| e.id == id) {
            return Err(fmt_err(name, "duplicate section"));
        }
        if fnv1a64(&bytes[offset..end]) != checksum {
            return Err(corrupt(name, "section checksum mismatch"));
        }
        entries.push(SectionEntry { id, offset, len, checksum });
    }
    Ok((kind, entries))
}

fn section_slice<'a>(
    bytes: &'a [u8],
    entries: &[SectionEntry],
    id: u32,
) -> Result<&'a [u8], IndexError> {
    let e = entries
        .iter()
        .find(|e| e.id == id)
        .ok_or_else(|| fmt_err(section_name(id), "section missing"))?;
    Ok(&bytes[e.offset..e.offset + e.len])
}

/// Parses and checksum-verifies a snapshot file's header and section
/// table without constructing an index — an `fsck` for snapshots, also
/// used by the corruption-matrix tests to locate section boundaries.
///
/// # Errors
/// Any of the typed `Snapshot*` variants of [`IndexError`]; a file that
/// passes `describe` has a structurally sound envelope (its sections'
/// *contents* are only fully validated by [`Index::open`]).
pub fn describe<P: AsRef<Path>>(path: P) -> Result<SnapshotInfo, IndexError> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read", &e))?;
    let (kind, entries) = parse_and_verify(&bytes)?;
    let meta = decode_meta(section_slice(&bytes, &entries, SEC_META)?)?;
    Ok(SnapshotInfo {
        format_version: SNAPSHOT_FORMAT_VERSION,
        summarization_kind: kind,
        file_len: u64_of(bytes.len()),
        sections: entries
            .iter()
            .map(|e| SectionInfo {
                id: e.id,
                name: section_name(e.id),
                offset: u64_of(e.offset),
                len: u64_of(e.len),
                checksum: e.checksum,
            })
            .collect(),
        capabilities: SnapshotCapabilities {
            n_rows: meta.n_slots,
            series_len: meta.series_len,
            word_len: meta.word_len,
            leaf_capacity: meta.leaf_capacity,
            collect_levels: meta.collect_levels,
            quant_refine: meta.quant_refine,
            quant_enabled: meta.quant_enabled,
            quant_grid_present: meta.grid_present,
            kernel_tier: sofa_simd::active_tier().name(),
        },
    })
}

// ---------------------------------------------------------------------
// Removes the temporary file on failure (any early return or panic
// between creation and the atomic rename).

struct TmpGuard {
    path: std::path::PathBuf,
    armed: bool,
}

impl Drop for TmpGuard {
    fn drop(&mut self) {
        if self.armed {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

enum SecPayload<'a> {
    Owned(Vec<u8>),
    Borrowed(&'a [u8]),
}

impl SecPayload<'_> {
    fn bytes(&self) -> &[u8] {
        match self {
            SecPayload::Owned(v) => v,
            SecPayload::Borrowed(b) => b,
        }
    }
}

const ZERO_PAD: [u8; SECTION_ALIGN as usize] = [0; SECTION_ALIGN as usize];

// ---------------------------------------------------------------------
// Snapshot (write) side.

impl<S: SnapshotSummarization> Index<S> {
    /// Writes a crash-safe snapshot of this index to `path`, returning
    /// the file size in bytes.
    ///
    /// The write is atomic: a sibling `<name>.tmp` is written and fsynced
    /// first, then renamed over `path`, then the parent directory is
    /// fsynced — a crash at any point leaves either the previous file or
    /// the complete new one. The temporary file is removed on failure.
    ///
    /// # Errors
    /// [`IndexError::SnapshotIo`] on any filesystem failure.
    pub fn snapshot<P: AsRef<Path>>(&self, path: P) -> Result<u64, IndexError> {
        let path = path.as_ref();
        let sections = self.encode_sections();

        // Header + section table (offsets 64-byte aligned so mapped
        // arenas are always well-aligned for f32/u32 casts).
        let n = sections.len();
        let mut header = Vec::with_capacity(HEADER_FIXED + TABLE_ENTRY * n + 8);
        header.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut header, SNAPSHOT_FORMAT_VERSION);
        put_u32(&mut header, ENDIAN_TAG);
        put_u32(&mut header, S::KIND);
        // The section list is a fixed enumeration of at most 9 entries.
        put_u32(&mut header, n as u32);
        let header_len = u64_of(HEADER_FIXED + TABLE_ENTRY * n + 8);
        let mut cursor = align_up(header_len, SECTION_ALIGN);
        let mut offsets = Vec::with_capacity(n);
        for (id, payload) in &sections {
            let bytes = payload.bytes();
            put_u32(&mut header, *id);
            put_u32(&mut header, 0);
            put_u64(&mut header, cursor);
            put_u64(&mut header, u64_of(bytes.len()));
            put_u64(&mut header, fnv1a64(bytes));
            offsets.push(cursor);
            cursor = align_up(cursor + u64_of(bytes.len()), SECTION_ALIGN);
        }
        let checksum = fnv1a64(&header);
        put_u64(&mut header, checksum);

        let file_name =
            path.file_name().ok_or_else(|| io_err("create", &"snapshot path has no file name"))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let mut guard = TmpGuard { path: tmp.clone(), armed: true };

        let mut f = File::create(&tmp).map_err(|e| io_err("create", &e))?;
        f.write_all(&header).map_err(|e| io_err("write", &e))?;
        let mut pos = u64_of(header.len());
        for ((_, payload), &off) in sections.iter().zip(offsets.iter()) {
            failpoint::fire(SNAPSHOT_WRITE_FAILPOINT).map_err(|e| io_err("write-section", &e))?;
            let pad = (off - pos) as usize;
            f.write_all(&ZERO_PAD[..pad]).map_err(|e| io_err("write", &e))?;
            let bytes = payload.bytes();
            f.write_all(bytes).map_err(|e| io_err("write", &e))?;
            pos = off + u64_of(bytes.len());
        }
        f.sync_all().map_err(|e| io_err("fsync", &e))?;
        drop(f);

        failpoint::fire(SNAPSHOT_RENAME_FAILPOINT).map_err(|e| io_err("rename", &e))?;
        std::fs::rename(&tmp, path).map_err(|e| io_err("rename", &e))?;
        guard.armed = false;

        // Durability of the rename itself: fsync the parent directory.
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        let dir = File::open(parent).map_err(|e| io_err("fsync-dir", &e))?;
        dir.sync_all().map_err(|e| io_err("fsync-dir", &e))?;
        Ok(pos)
    }

    fn encode_sections(&self) -> Vec<(u32, SecPayload<'_>)> {
        let mut sections = Vec::with_capacity(9);
        sections.push((SEC_META, SecPayload::Owned(self.encode_meta())));
        let mut summ = Vec::new();
        self.summarization.encode_summarization(&mut summ);
        sections.push((SEC_SUMM, SecPayload::Owned(summ)));
        sections.push((SEC_DATA, SecPayload::Borrowed(sofa_mmap::as_bytes(&self.data[..]))));
        sections.push((SEC_WORDS, SecPayload::Borrowed(&self.words[..])));
        let mut mapping = Vec::with_capacity(8 * self.row_to_slot.len());
        put_u32_slice(&mut mapping, &self.row_to_slot);
        put_u32_slice(&mut mapping, &self.slot_to_row);
        sections.push((SEC_MAPPING, SecPayload::Owned(mapping)));
        sections.push((SEC_TREE, SecPayload::Owned(self.encode_tree())));
        sections.push((SEC_PACKS, SecPayload::Owned(self.encode_packs())));
        sections.push((SEC_COLLECT, SecPayload::Owned(self.encode_collect())));
        if self.quant_grid.is_some() {
            sections.push((SEC_QUANT, SecPayload::Owned(self.encode_quant())));
        }
        sections
    }

    fn encode_meta(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        put_len(&mut out, self.series_len);
        put_len(&mut out, self.word_len);
        put_len(&mut out, self.slot_to_row.len());
        put_len(&mut out, self.config.leaf_capacity);
        put_len(&mut out, self.config.collect_levels);
        put_len(&mut out, self.subtrees.len());
        match self.config.auto_repack_pct {
            Some(pct) => {
                put_u8(&mut out, 1);
                put_u32(&mut out, pct);
            }
            None => {
                put_u8(&mut out, 0);
                put_u32(&mut out, 0);
            }
        }
        put_u8(&mut out, u8::from(self.config.quant_refine));
        put_u8(&mut out, u8::from(self.quant_enabled.load(Ordering::Relaxed)));
        put_u8(&mut out, u8::from(self.quant_grid.is_some()));
        put_f64(&mut out, self.build_breakdown.0);
        put_f64(&mut out, self.build_breakdown.1);
        out
    }

    fn encode_tree(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for st in &self.subtrees {
            put_u64(&mut out, st.key);
            put_len(&mut out, st.stale_leaves);
            put_len(&mut out, st.nodes.len());
            for node in &st.nodes {
                out.extend_from_slice(&node.prefixes);
                out.extend_from_slice(&node.bits);
                match &node.kind {
                    NodeKind::Leaf { rows, pack } => {
                        put_u8(&mut out, 0);
                        put_len(&mut out, rows.len());
                        put_u32_slice(&mut out, rows);
                        put_u8(&mut out, u8::from(pack.is_some()));
                    }
                    NodeKind::Inner { left, right, split_pos } => {
                        put_u8(&mut out, 1);
                        put_u32(&mut out, *left);
                        put_u32(&mut out, *right);
                        put_u16(&mut out, *split_pos);
                    }
                }
            }
        }
        out
    }

    fn encode_packs(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for st in &self.subtrees {
            for node in &st.nodes {
                if let NodeKind::Leaf { pack: Some(pack), .. } = &node.kind {
                    put_u32(&mut out, pack.start);
                    put_len(&mut out, pack.block.n());
                    put_len(&mut out, pack.block.bounds().len());
                    put_f32_slice(&mut out, pack.block.bounds());
                }
            }
        }
        out
    }

    fn encode_collect(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for st in &self.subtrees {
            match &st.collect {
                None => put_u8(&mut out, 0),
                Some(cb) => {
                    put_u8(&mut out, 1);
                    put_len(&mut out, cb.node_ids.len());
                    put_u32_slice(&mut out, &cb.node_ids);
                    encode_node_block(&mut out, &cb.block);
                    put_len(&mut out, cb.levels.len());
                    for lanes in &cb.levels {
                        put_len(&mut out, lanes.node_ids.len());
                        put_u32_slice(&mut out, &lanes.node_ids);
                        put_len(&mut out, lanes.leaf_spans.len());
                        for &(lo, hi) in &lanes.leaf_spans {
                            put_u32(&mut out, lo);
                            put_u32(&mut out, hi);
                        }
                    }
                    let level_blocks = cb.level_blocks.levels();
                    put_len(&mut out, level_blocks.len());
                    for block in level_blocks {
                        encode_node_block(&mut out, block);
                    }
                }
            }
        }
        out
    }

    fn encode_quant(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let Some(grid) = self.quant_grid.as_ref() else { return out };
        put_len(&mut out, grid.series_len());
        put_f32(&mut out, grid.scale());
        put_f32_slice(&mut out, grid.mins());
        let packs: Vec<&LeafPack> = self
            .subtrees
            .iter()
            .flat_map(|st| st.nodes.iter())
            .filter_map(|node| match &node.kind {
                NodeKind::Leaf { pack: Some(pack), .. } => Some(pack),
                _ => None,
            })
            .collect();
        put_len(&mut out, packs.len());
        for pack in packs {
            match &pack.quant {
                None => put_u8(&mut out, 0),
                Some(qb) => {
                    put_u8(&mut out, 1);
                    put_len(&mut out, qb.n());
                    put_len(&mut out, qb.codes().len());
                    out.extend_from_slice(qb.codes());
                    put_len(&mut out, qb.errs().len());
                    put_f64_slice(&mut out, qb.errs());
                }
            }
        }
        out
    }
}

fn encode_node_block(out: &mut Vec<u8>, block: &NodeBlock) {
    put_len(out, block.n());
    put_len(out, block.bounds().len());
    put_f32_slice(out, block.bounds());
}

// ---------------------------------------------------------------------
// Open (read) side.

struct Meta {
    series_len: usize,
    word_len: usize,
    n_slots: usize,
    leaf_capacity: usize,
    collect_levels: usize,
    n_subtrees: usize,
    auto_repack_pct: Option<u32>,
    quant_refine: bool,
    quant_enabled: bool,
    grid_present: bool,
    build_breakdown: (f64, f64),
}

fn decode_flag(r: &mut SectionReader<'_>, what: &str) -> Result<bool, IndexError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        v => Err(r.invalid(format!("{what} flag {v} is not a bool"))),
    }
}

fn decode_meta(buf: &[u8]) -> Result<Meta, IndexError> {
    let mut r = SectionReader::new(buf, "meta");
    let series_len = r.count()?;
    let word_len = r.count()?;
    let n_slots = r.count()?;
    let leaf_capacity = r.count()?;
    let collect_levels = r.count()?;
    let n_subtrees = r.count()?;
    let has_auto = decode_flag(&mut r, "auto-repack")?;
    let auto_pct = r.u32()?;
    let quant_refine = decode_flag(&mut r, "quant-refine")?;
    let quant_enabled = decode_flag(&mut r, "quant-enabled")?;
    let grid_present = decode_flag(&mut r, "grid-present")?;
    let build_breakdown = (r.f64()?, r.f64()?);
    r.finish()?;
    if series_len == 0 {
        return Err(layout("meta", "series length is zero"));
    }
    if word_len == 0 || word_len > 64 {
        return Err(layout("meta", format!("word length {word_len} out of range 1..=64")));
    }
    if n_slots == 0 {
        return Err(layout("meta", "snapshot holds zero rows"));
    }
    if u64_of(n_slots) > u64::from(u32::MAX) {
        return Err(layout("meta", format!("{n_slots} rows exceed the u32 row-id space")));
    }
    if n_slots.checked_mul(series_len).is_none() || n_slots.checked_mul(word_len).is_none() {
        return Err(layout("meta", "arena extent overflows the address space"));
    }
    if leaf_capacity == 0 {
        return Err(layout("meta", "leaf capacity is zero"));
    }
    if n_subtrees == 0 || n_subtrees > n_slots {
        return Err(layout(
            "meta",
            format!("implausible subtree count {n_subtrees} for {n_slots} rows"),
        ));
    }
    Ok(Meta {
        series_len,
        word_len,
        n_slots,
        leaf_capacity,
        collect_levels,
        n_subtrees,
        auto_repack_pct: has_auto.then_some(auto_pct),
        quant_refine,
        quant_enabled,
        grid_present,
        build_breakdown,
    })
}

fn decode_mapping(buf: &[u8], meta: &Meta) -> Result<(Vec<u32>, Vec<u32>), IndexError> {
    let mut r = SectionReader::new(buf, "mapping");
    let row_to_slot = r.u32_vec(meta.n_slots)?;
    let slot_to_row = r.u32_vec(meta.n_slots)?;
    r.finish()?;
    // The two arrays must be mutually inverse permutations of 0..n_slots;
    // anything else would let a query read the wrong series for a row.
    let mut seen = vec![false; meta.n_slots];
    for (slot, &row) in slot_to_row.iter().enumerate() {
        let row = row as usize;
        if row >= meta.n_slots {
            return Err(corrupt("mapping", format!("slot {slot} maps to out-of-range row {row}")));
        }
        if seen[row] {
            return Err(corrupt("mapping", format!("row {row} occupies two slots")));
        }
        seen[row] = true;
        if row_to_slot[row] as usize != slot {
            return Err(corrupt(
                "mapping",
                format!("row {row}: forward and inverse slot maps disagree"),
            ));
        }
    }
    Ok((row_to_slot, slot_to_row))
}

/// Parent-before-child with exactly one parent per non-root node — i.e.
/// a well-formed binary tree rooted at node 0, with no cycles and no
/// unreachable nodes (the builder emits exactly this shape).
fn validate_tree_shape(nodes: &[Node]) -> Result<(), String> {
    let mut referenced = vec![false; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        if let NodeKind::Inner { left, right, .. } = node.kind {
            for child in [left as usize, right as usize] {
                if child <= i {
                    return Err(format!("inner node {i} points backwards to node {child}"));
                }
                if referenced[child] {
                    return Err(format!("node {child} has two parents"));
                }
                referenced[child] = true;
            }
        }
    }
    for (i, &r) in referenced.iter().enumerate().skip(1) {
        if !r {
            return Err(format!("node {i} is unreachable from the subtree root"));
        }
    }
    Ok(())
}

/// Decodes the forest. Returns the subtrees (packs unattached) plus the
/// (subtree, node) positions of leaves whose packs follow in the
/// leaf-packs section, in file order.
#[allow(clippy::type_complexity)]
fn decode_tree(
    buf: &[u8],
    meta: &Meta,
    symbol_bits: u8,
) -> Result<(Vec<Subtree>, Vec<(usize, usize)>), IndexError> {
    let mut r = SectionReader::new(buf, "tree");
    let mut subtrees = Vec::with_capacity(meta.n_subtrees);
    let mut packed = Vec::new();
    let mut seen_rows = vec![false; meta.n_slots];
    let mut prev_key = None;
    for si in 0..meta.n_subtrees {
        let key = r.u64()?;
        if prev_key.is_some_and(|p| key <= p) {
            return Err(r.invalid("subtree keys are not strictly ascending"));
        }
        prev_key = Some(key);
        let stale_leaves = r.count()?;
        let n_nodes = r.bounded_count(2 * meta.word_len + 1)?;
        if n_nodes == 0 {
            return Err(r.invalid(format!("subtree {si} has no nodes")));
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for ni in 0..n_nodes {
            let prefixes = r.byte_vec(meta.word_len)?;
            let bits = r.byte_vec(meta.word_len)?;
            if bits.iter().any(|&b| b > symbol_bits) {
                return Err(r.invalid(format!(
                    "node {ni} of subtree {si} refines past the {symbol_bits}-bit symbol depth"
                )));
            }
            let kind = match r.u8()? {
                0 => {
                    let n_rows = r.bounded_count(4)?;
                    let rows = r.u32_vec(n_rows)?;
                    for &row in &rows {
                        let row = row as usize;
                        if row >= meta.n_slots {
                            return Err(r.invalid(format!("leaf holds out-of-range row {row}")));
                        }
                        if seen_rows[row] {
                            return Err(r.invalid(format!("row {row} appears in two leaves")));
                        }
                        seen_rows[row] = true;
                    }
                    if decode_flag(&mut r, "has-pack")? {
                        packed.push((si, ni));
                    }
                    NodeKind::Leaf { rows, pack: None }
                }
                1 => {
                    let left = r.u32()?;
                    let right = r.u32()?;
                    let split_pos = r.u16()?;
                    if left as usize >= n_nodes || right as usize >= n_nodes {
                        return Err(r.invalid(format!(
                            "inner node {ni} of subtree {si} points outside its {n_nodes} nodes"
                        )));
                    }
                    if usize::from(split_pos) >= meta.word_len {
                        return Err(r.invalid(format!(
                            "split position {split_pos} exceeds word length {}",
                            meta.word_len
                        )));
                    }
                    NodeKind::Inner { left, right, split_pos }
                }
                tag => return Err(r.invalid(format!("unknown node tag {tag}"))),
            };
            nodes.push(Node { prefixes, bits, kind });
        }
        validate_tree_shape(&nodes).map_err(|d| corrupt("tree", format!("subtree {si}: {d}")))?;
        subtrees.push(Subtree { key, nodes, collect: None, stale_leaves });
    }
    r.finish()?;
    if let Some(row) = seen_rows.iter().position(|&s| !s) {
        return Err(corrupt("tree", format!("row {row} is missing from every leaf")));
    }
    Ok((subtrees, packed))
}

fn decode_packs(
    buf: &[u8],
    meta: &Meta,
    packed: &[(usize, usize)],
    subtrees: &mut [Subtree],
    slot_to_row: &[u32],
) -> Result<(), IndexError> {
    let mut r = SectionReader::new(buf, "leaf-packs");
    for &(si, ni) in packed {
        let start = r.u32()?;
        let n = r.count()?;
        let bounds_len = r.bounded_count(4)?;
        let bounds = r.f32_vec(bounds_len)?;
        let block = WordBlock::from_raw_parts(n, meta.word_len, bounds)
            .map_err(|d| corrupt("leaf-packs", d))?;
        let NodeKind::Leaf { rows, pack } = &mut subtrees[si].nodes[ni].kind else {
            return Err(corrupt("leaf-packs", "pack attached to a non-leaf node"));
        };
        if n != rows.len() {
            return Err(corrupt(
                "leaf-packs",
                format!("pack of {n} candidates on a leaf of {} rows", rows.len()),
            ));
        }
        let start_us = start as usize;
        if start_us.checked_add(n).map_or(true, |e| e > meta.n_slots) {
            return Err(corrupt(
                "leaf-packs",
                format!("pack run {start_us}..+{n} exceeds the arena"),
            ));
        }
        // The pack's contiguous slot run must hold exactly its rows in
        // order — refinement reads series by `start + lane`.
        for (i, &row) in rows.iter().enumerate() {
            if slot_to_row[start_us + i] != row {
                return Err(corrupt(
                    "leaf-packs",
                    format!("slot {} holds a different row than the pack expects", start_us + i),
                ));
            }
        }
        *pack = Some(LeafPack { start, block, quant: None });
    }
    r.finish()
}

fn decode_one_node_block(
    r: &mut SectionReader<'_>,
    word_len: usize,
    expect_n: Option<usize>,
) -> Result<NodeBlock, IndexError> {
    let n = r.count()?;
    if expect_n.is_some_and(|e| e != n) {
        return Err(r.invalid(format!("node block covers {n} nodes, expected {:?}", expect_n)));
    }
    let bounds_len = r.bounded_count(4)?;
    let bounds = r.f32_vec(bounds_len)?;
    NodeBlock::from_raw_parts(n, word_len, bounds).map_err(|d| corrupt("collect", d))
}

fn decode_collect(buf: &[u8], meta: &Meta, subtrees: &mut [Subtree]) -> Result<(), IndexError> {
    let mut r = SectionReader::new(buf, "collect");
    for (si, subtree) in subtrees.iter_mut().enumerate() {
        if !decode_flag(&mut r, "has-collect")? {
            continue;
        }
        let n_nodes = subtree.nodes.len();
        let n_fringe = r.bounded_count(4)?;
        let node_ids = r.u32_vec(n_fringe)?;
        for &id in &node_ids {
            let id = id as usize;
            if id >= n_nodes || !matches!(subtree.nodes[id].kind, NodeKind::Leaf { .. }) {
                return Err(
                    r.invalid(format!("fringe references node {id}, not a leaf of subtree {si}"))
                );
            }
        }
        let block = decode_one_node_block(&mut r, meta.word_len, Some(n_fringe))?;
        let n_levels = r.bounded_count(1)?;
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let n_lane = r.bounded_count(4)?;
            let lane_ids = r.u32_vec(n_lane)?;
            if lane_ids.iter().any(|&id| id as usize >= n_nodes) {
                return Err(r.invalid(format!("level lane references a node outside subtree {si}")));
            }
            let n_spans = r.bounded_count(8)?;
            if n_spans != n_lane {
                return Err(r.invalid(format!("{n_spans} spans for {n_lane} level lanes")));
            }
            let mut leaf_spans = Vec::with_capacity(n_spans);
            for _ in 0..n_spans {
                let lo = r.u32()?;
                let hi = r.u32()?;
                if lo > hi || hi as usize > n_fringe {
                    return Err(r.invalid(format!(
                        "level span {lo}..{hi} exceeds the {n_fringe}-leaf fringe"
                    )));
                }
                leaf_spans.push((lo, hi));
            }
            levels.push(LevelLanes { node_ids: lane_ids, leaf_spans });
        }
        let n_blocks = r.bounded_count(1)?;
        if n_blocks != n_levels {
            return Err(r.invalid(format!("{n_blocks} level blocks for {n_levels} levels")));
        }
        let mut level_blocks = Vec::with_capacity(n_blocks);
        for level in &levels {
            level_blocks.push(decode_one_node_block(
                &mut r,
                meta.word_len,
                Some(level.node_ids.len()),
            )?);
        }
        subtree.collect = Some(CollectBlock {
            node_ids,
            block,
            levels,
            level_blocks: LevelBlocks::from_levels(level_blocks),
        });
    }
    r.finish()
}

fn decode_quant(
    buf: &[u8],
    meta: &Meta,
    packed: &[(usize, usize)],
    subtrees: &mut [Subtree],
) -> Result<QuantGrid, IndexError> {
    let mut r = SectionReader::new(buf, "quant");
    let series_len = r.bounded_count(4)?;
    let scale = r.f32()?;
    let mins = r.f32_vec(series_len)?;
    let grid = QuantGrid::from_parts(series_len, scale, mins).map_err(|d| corrupt("quant", d))?;
    if grid.series_len() != meta.series_len {
        return Err(layout(
            "quant",
            format!(
                "quantizer is for length-{series_len} series, index holds length {}",
                meta.series_len
            ),
        ));
    }
    let n_packs = r.count()?;
    if n_packs != packed.len() {
        return Err(
            r.invalid(format!("{n_packs} quant entries for {} packed leaves", packed.len()))
        );
    }
    for &(si, ni) in packed {
        if !decode_flag(&mut r, "has-quant")? {
            continue;
        }
        let n = r.count()?;
        let codes_len = r.bounded_count(1)?;
        let codes = r.byte_vec(codes_len)?;
        let errs_len = r.bounded_count(8)?;
        let errs = r.f64_vec(errs_len)?;
        let qb = QuantBlock::from_parts(&grid, n, codes, errs).map_err(|d| corrupt("quant", d))?;
        let NodeKind::Leaf { rows, pack: Some(pack) } = &mut subtrees[si].nodes[ni].kind else {
            return Err(corrupt("quant", "quant codes attached to an unpacked node"));
        };
        if n != rows.len() {
            return Err(corrupt(
                "quant",
                format!("quant block of {n} candidates on a leaf of {} rows", rows.len()),
            ));
        }
        pack.quant = Some(qb);
    }
    r.finish()?;
    Ok(grid)
}

impl<S: SnapshotSummarization> Index<S> {
    /// Opens a snapshot written by [`Index::snapshot`], serving the two
    /// big arenas straight out of a memory mapping (zero copies, zero
    /// deserialization) and rehydrating the small structures. The worker
    /// pool is sized to the machine's available parallelism; use
    /// [`Index::open_with_pool`] to share threads across indexes.
    ///
    /// Every byte is validated before use: corrupt, truncated, foreign
    /// or layout-mismatched files fail closed with a typed error.
    ///
    /// # Errors
    /// [`IndexError::SnapshotIo`] / [`IndexError::SnapshotFormat`] /
    /// [`IndexError::SnapshotCorrupt`] / [`IndexError::SnapshotLayout`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, IndexError> {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::open_with_pool(path, ExecPool::shared(threads))
    }

    /// [`Index::open`] on a caller-supplied worker pool.
    ///
    /// # Errors
    /// As [`Index::open`].
    pub fn open_with_pool<P: AsRef<Path>>(
        path: P,
        pool: Arc<ExecPool>,
    ) -> Result<Self, IndexError> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| io_err("open", &e))?;
        let map = Arc::new(Mmap::map(&file).map_err(|e| io_err("mmap", &e))?);
        // The checksum sweep below touches every byte front to back —
        // let the kernel read ahead aggressively for that pass.
        map.advise(Advice::Sequential);
        let bytes = map.as_bytes();
        let (kind, entries) = parse_and_verify(bytes)?;
        if kind != S::KIND {
            return Err(fmt_err(
                "header",
                format!("snapshot holds a {} index, expected {}", kind_name(kind), S::KIND_NAME),
            ));
        }

        let meta = decode_meta(section_slice(bytes, &entries, SEC_META)?)?;
        let mut summ_reader =
            SectionReader::new(section_slice(bytes, &entries, SEC_SUMM)?, "summarization");
        let summarization = S::decode_summarization(&mut summ_reader)?;
        summ_reader.finish()?;
        if summarization.series_len() != meta.series_len {
            return Err(layout(
                "summarization",
                format!(
                    "model summarizes length-{} series, meta declares {}",
                    summarization.series_len(),
                    meta.series_len
                ),
            ));
        }
        if summarization.word_len() != meta.word_len {
            return Err(layout(
                "summarization",
                format!(
                    "model produces {}-symbol words, meta declares {}",
                    summarization.word_len(),
                    meta.word_len
                ),
            ));
        }

        // The two big arenas: bounds/alignment-validated windows into the
        // mapping — this is the zero-deserialization core of the open.
        let data_entry = section_slice(bytes, &entries, SEC_DATA)?;
        let data_elems = meta.n_slots * meta.series_len;
        if data_entry.len() != data_elems * 4 {
            return Err(layout(
                "data",
                format!(
                    "data arena holds {} bytes, layout requires {} (rows x series length x 4)",
                    data_entry.len(),
                    data_elems * 4
                ),
            ));
        }
        let words_entry = section_slice(bytes, &entries, SEC_WORDS)?;
        let words_elems = meta.n_slots * meta.word_len;
        if words_entry.len() != words_elems {
            return Err(layout(
                "words",
                format!(
                    "word arena holds {} bytes, layout requires {} (rows x word length)",
                    words_entry.len(),
                    words_elems
                ),
            ));
        }
        let data_off = entries.iter().find(|e| e.id == SEC_DATA).map_or(0, |e| e.offset);
        let words_off = entries.iter().find(|e| e.id == SEC_WORDS).map_or(0, |e| e.offset);
        let data = Arena::mapped(Arc::clone(&map), data_off, data_elems)
            .map_err(|d| fmt_err("data", d))?;
        let words = Arena::mapped(Arc::clone(&map), words_off, words_elems)
            .map_err(|d| fmt_err("words", d))?;

        let (row_to_slot, slot_to_row) =
            decode_mapping(section_slice(bytes, &entries, SEC_MAPPING)?, &meta)?;
        let (mut subtrees, packed) = decode_tree(
            section_slice(bytes, &entries, SEC_TREE)?,
            &meta,
            summarization.symbol_bits(),
        )?;
        decode_packs(
            section_slice(bytes, &entries, SEC_PACKS)?,
            &meta,
            &packed,
            &mut subtrees,
            &slot_to_row,
        )?;
        decode_collect(section_slice(bytes, &entries, SEC_COLLECT)?, &meta, &mut subtrees)?;
        let quant_grid = if meta.grid_present {
            let Ok(buf) = section_slice(bytes, &entries, SEC_QUANT) else {
                return Err(layout(
                    "quant",
                    "meta declares a quantizer but the section is missing",
                ));
            };
            Some(decode_quant(buf, &meta, &packed, &mut subtrees)?)
        } else {
            if section_slice(bytes, &entries, SEC_QUANT).is_ok() {
                return Err(layout(
                    "quant",
                    "quant section present but meta declares no quantizer",
                ));
            }
            None
        };

        // Leaf bookkeeping is recomputed from the decoded tree rather
        // than trusted from meta.
        let mut total_leaves = 0usize;
        let mut unpacked_leaves = 0usize;
        for st in &subtrees {
            for node in &st.nodes {
                if let NodeKind::Leaf { pack, .. } = &node.kind {
                    total_leaves += 1;
                    unpacked_leaves += usize::from(pack.is_none());
                }
            }
        }

        // Validation is done; from here on the mapping serves leaf
        // refinements, which land on arbitrary slot runs — sequential
        // read-ahead would only pollute the page cache.
        map.advise(Advice::Random);

        let threads = pool.threads();
        let config = IndexConfig {
            leaf_capacity: meta.leaf_capacity,
            num_threads: threads,
            num_queues: threads,
            auto_repack_pct: meta.auto_repack_pct,
            collect_levels: meta.collect_levels,
            quant_refine: meta.quant_refine,
        };
        let query_env = sofa_summaries::QueryEnv::new(&summarization);
        Ok(Index {
            summarization,
            config,
            pool,
            data,
            words,
            row_to_slot,
            slot_to_row,
            subtrees,
            series_len: meta.series_len,
            word_len: meta.word_len,
            build_breakdown: meta.build_breakdown,
            counters: crate::stats::KernelCounters::default(),
            query_env,
            quant_grid,
            quant_enabled: AtomicBool::new(meta.quant_enabled),
            scratches: parking_lot::Mutex::new(Vec::with_capacity(threads + 2)),
            unpacked_leaves,
            total_leaves,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexConfig;
    use sofa_summaries::SfaConfig;
    use std::sync::atomic::AtomicUsize;

    fn dataset(count: usize, n: usize) -> Vec<f32> {
        let mut data = Vec::with_capacity(count * n);
        for r in 0..count {
            for t in 0..n {
                let x = t as f32;
                data.push(
                    (x * 0.2 + r as f32).sin() + 0.5 * (x * (0.5 + (r % 7) as f32 * 0.2)).cos(),
                );
            }
        }
        data
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("sofa-snap-{}-{tag}-{id}.idx", std::process::id()))
    }

    fn sax_index(count: usize) -> Index<ISax> {
        let sax = ISax::new(64, &SaxConfig { word_len: 8, alphabet: 256 });
        Index::build(sax, &dataset(count, 64), IndexConfig::with_threads(2).leaf_capacity(25))
            .expect("build")
    }

    fn assert_same_answers<S: Summarization>(
        a: &Index<S>,
        b: &Index<S>,
        queries: &[f32],
        n: usize,
    ) {
        for q in queries.chunks(n) {
            let x = a.knn(q, 5).expect("query a");
            let y = b.knn(q, 5).expect("query b");
            for (na, nb) in x.iter().zip(y.iter()) {
                assert_eq!(na.row, nb.row);
                assert_eq!(na.dist_sq.to_bits(), nb.dist_sq.to_bits(), "row {}", na.row);
            }
        }
    }

    #[test]
    fn isax_round_trip_is_bit_identical() {
        let idx = sax_index(600);
        let path = tmp_path("sax-rt");
        let bytes = idx.snapshot(&path).expect("snapshot");
        assert!(bytes > 0);
        let opened = Index::<ISax>::open(&path).expect("open");
        assert!(opened.is_mapped());
        assert_eq!(opened.n_series(), idx.n_series());
        assert!(opened.stats().mapped_storage);
        assert_same_answers(&idx, &opened, &dataset(10, 64), 64);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sfa_round_trip_preserves_model_and_answers() {
        let n = 64;
        let data = dataset(500, n);
        let sfa =
            Sfa::learn(&data, n, &SfaConfig { word_len: 8, alphabet: 64, ..Default::default() });
        let idx = Index::build(sfa, &data, IndexConfig::with_threads(2).leaf_capacity(30))
            .expect("build");
        let path = tmp_path("sfa-rt");
        idx.snapshot(&path).expect("snapshot");
        let opened = Index::<Sfa>::open(&path).expect("open");
        assert_eq!(opened.summarization().name(), idx.summarization().name());
        assert_eq!(opened.summarization().model().bins, idx.summarization().model().bins);
        assert_same_answers(&idx, &opened, &dataset(10, n), n);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn describe_lists_all_sections() {
        let idx = sax_index(300);
        let path = tmp_path("describe");
        idx.snapshot(&path).expect("snapshot");
        let info = describe(&path).expect("describe");
        assert_eq!(info.format_version, SNAPSHOT_FORMAT_VERSION);
        assert_eq!(info.summarization_kind, <ISax as SnapshotSummarization>::KIND);
        let names: Vec<&str> = info.sections.iter().map(|s| s.name).collect();
        for want in
            ["meta", "summarization", "data", "words", "mapping", "tree", "leaf-packs", "collect"]
        {
            assert!(names.contains(&want), "missing section {want}: {names:?}");
        }
        for s in &info.sections {
            assert_eq!(s.offset % 64, 0, "section {} misaligned", s.name);
            assert!(s.offset + s.len <= info.file_len);
        }
        // The capability matrix reflects the built index's config.
        let caps = &info.capabilities;
        assert_eq!(caps.n_rows, 300);
        assert_eq!(caps.series_len, 64);
        assert_eq!(caps.word_len, 8);
        assert_eq!(caps.leaf_capacity, 25);
        assert_eq!(caps.collect_levels, idx.config().collect_levels);
        assert_eq!(caps.quant_refine, idx.config().quant_refine);
        assert_eq!(caps.quant_enabled, idx.quant_refine_enabled());
        assert_eq!(caps.quant_grid_present, idx.quant_grid.is_some());
        assert_eq!(caps.kernel_tier, sofa_simd::active_tier().name());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_kind_and_foreign_files_fail_closed() {
        let idx = sax_index(200);
        let path = tmp_path("kind");
        idx.snapshot(&path).expect("snapshot");
        // An iSAX snapshot must not open as SFA.
        match Index::<Sfa>::open(&path) {
            Err(IndexError::SnapshotFormat { section, .. }) => assert_eq!(section, "header"),
            Err(other) => panic!("expected SnapshotFormat, got {other:?}"),
            Ok(_) => panic!("wrong-kind open must fail"),
        }
        // A foreign file is rejected at the magic check.
        std::fs::write(&path, b"definitely not a snapshot").expect("write");
        match Index::<ISax>::open(&path) {
            Err(IndexError::SnapshotFormat { section, .. }) => assert_eq!(section, "header"),
            Err(other) => panic!("expected SnapshotFormat, got {other:?}"),
            Ok(_) => panic!("foreign-file open must fail"),
        }
        // Zero-length files too.
        std::fs::write(&path, b"").expect("write");
        assert!(matches!(Index::<ISax>::open(&path), Err(IndexError::SnapshotFormat { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_is_detected_by_checksums() {
        let idx = sax_index(300);
        let path = tmp_path("flip");
        idx.snapshot(&path).expect("snapshot");
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");
        match Index::<ISax>::open(&path) {
            Err(IndexError::SnapshotCorrupt { .. }) => {}
            Err(other) => panic!("expected SnapshotCorrupt, got {other:?}"),
            Ok(_) => panic!("bit-flipped open must fail"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failpoint_aborts_write_and_cleans_tmp() {
        let idx = sax_index(200);
        let path = tmp_path("failpoint");
        idx.snapshot(&path).expect("first snapshot");
        let before = std::fs::read(&path).expect("read");

        // Die before the third section write: target intact, tmp removed.
        failpoint::arm(SNAPSHOT_WRITE_FAILPOINT, failpoint::FailAction::Error, Some(3));
        // The first two fires are budgeted no-ops... arm with times=Some(3)
        // fires on the first three calls; the snapshot errors on call 1.
        let err = idx.snapshot(&path).expect_err("failpoint must abort");
        failpoint::clear(SNAPSHOT_WRITE_FAILPOINT);
        assert!(matches!(err, IndexError::SnapshotIo { .. }), "{err:?}");
        assert_eq!(std::fs::read(&path).expect("read"), before, "target must be untouched");
        let tmp = path.with_file_name(format!(
            "{}.tmp",
            path.file_name().and_then(|n| n.to_str()).expect("name")
        ));
        assert!(!tmp.exists(), "tmp file must be cleaned up");

        // Same for a failure at the rename step.
        failpoint::arm(SNAPSHOT_RENAME_FAILPOINT, failpoint::FailAction::Error, Some(1));
        let err = idx.snapshot(&path).expect_err("rename failpoint must abort");
        failpoint::clear(SNAPSHOT_RENAME_FAILPOINT);
        assert!(matches!(err, IndexError::SnapshotIo { .. }), "{err:?}");
        assert_eq!(std::fs::read(&path).expect("read"), before);
        assert!(!tmp.exists());

        // And the index still snapshots fine afterwards.
        idx.snapshot(&path).expect("snapshot after failpoints");
        Index::<ISax>::open(&path).expect("open");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn opened_index_accepts_inserts_via_copy_on_write() {
        let idx = sax_index(300);
        let path = tmp_path("cow");
        idx.snapshot(&path).expect("snapshot");
        let mut opened = Index::<ISax>::open(&path).expect("open");
        assert!(opened.is_mapped());
        let extra = dataset(20, 64);
        opened.insert_all(&extra).expect("insert");
        assert!(!opened.is_mapped(), "inserts must promote the arenas");
        assert_eq!(opened.n_series(), 320);
        opened.knn(&extra[..64], 3).expect("query after insert");
        std::fs::remove_file(&path).ok();
    }
}
