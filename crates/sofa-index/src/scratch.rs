//! Pooled per-query working state — the allocation half of the
//! collect-phase batching PR.
//!
//! Before this module existed, every `knn` call allocated its
//! `QueryContext` (values/weights/tables), a query-word buffer, a
//! [`RootLbd`] penalty table, a k-NN heap, one priority queue per
//! refinement lane, and a DFS stack per subtree — a dozen heap
//! allocations per query that dominate short-series serving (the
//! ROADMAP's "normalize + DFT + queue setup" fixed cost). A
//! [`QueryScratch`] owns all of those buffers with no lifetimes attached,
//! so the index keeps a pool of them (one per worker lane in the steady
//! state) and each query checks one out, resets it, and returns it on
//! drop. After warm-up the serial `knn` path performs **zero** heap
//! allocations (asserted by the workspace's counting-allocator test), and
//! batch lanes reuse one scratch for every query they claim.

use crate::bsf::{KnnSet, Neighbor};
use parking_lot::Mutex;
use sofa_summaries::{RootLbd, TransformScratch};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::AtomicBool;

/// A leaf waiting in a refinement priority queue, ordered by ascending
/// lower bound.
#[derive(Copy, Clone, Debug, PartialEq)]
pub(crate) struct QueueEntry {
    pub lbd: f32,
    pub subtree: u32,
    pub node: u32,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.lbd
            .total_cmp(&other.lbd)
            .then_with(|| self.subtree.cmp(&other.subtree))
            .then_with(|| self.node.cmp(&other.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One refinement queue: a min-queue on leaf lower bound.
pub(crate) type LeafQueue = BinaryHeap<Reverse<QueueEntry>>;

/// Per-pool-lane collect-phase working state: the DFS stack of the scalar
/// fallback paths and the dead-lane markers of the hierarchy sweep (one
/// flag per leaf-fringe lane of the subtree currently being priced). Both
/// keep their capacity across queries, so warm queries never allocate.
#[derive(Default)]
pub(crate) struct LaneScratch {
    /// Scalar collect-DFS stack (blockless subtrees, stale lanes).
    pub stack: Vec<u32>,
    /// Fringe lanes retired by a pruned ancestor level lane.
    pub dead: Vec<bool>,
    /// Dead-lane count per fringe kernel group — the O(1) whole-group
    /// skip test of the fringe sweep (scanning 8 bools per group would
    /// cost as much as the abandoning kernel call it avoids).
    pub dead_in_group: Vec<u8>,
}

impl LaneScratch {
    /// Re-arms the dead-lane markers for a fringe of `n_lanes` lanes.
    pub fn reset_dead(&mut self, n_lanes: usize) {
        self.dead.clear();
        self.dead.resize(n_lanes, false);
        self.dead_in_group.clear();
        self.dead_in_group.resize(n_lanes.div_ceil(sofa_simd::BLOCK_LANES), 0);
    }

    /// Marks fringe lanes `lo..hi` dead, maintaining the group counts.
    /// Spans never overlap (the sweep checks a span's head before
    /// marking), so plain addition keeps the counts exact.
    pub fn mark_dead(&mut self, lo: usize, hi: usize) {
        for d in &mut self.dead[lo..hi] {
            *d = true;
        }
        const LANES: usize = sofa_simd::BLOCK_LANES;
        for g in lo / LANES..hi.div_ceil(LANES) {
            let overlap = hi.min((g + 1) * LANES) - lo.max(g * LANES);
            self.dead_in_group[g] += overlap as u8;
        }
    }
}

/// Every buffer one query needs, with no lifetime parameters so the index
/// can pool instances across queries. See the module docs.
pub(crate) struct QueryScratch {
    /// The z-normalized query.
    pub q: Vec<f32>,
    /// The query's exact values per word position (feeds
    /// `QueryContext::borrowed`).
    pub values: Vec<f32>,
    /// Transform scratch (cached DFT executor + spectrum for SFA).
    pub transform: TransformScratch,
    /// The query's word (quantized values).
    pub qword: Vec<u8>,
    /// Reusable root-key XOR-penalty table.
    pub root_lbd: RootLbd,
    /// Reusable k-best set (heap + atomic bound).
    pub knn: KnnSet,
    /// Range-query hit accumulator (unordered during the sweep; sorted
    /// at drain). Unused — and empty — for k-NN/IP queries.
    pub range: Mutex<Vec<Neighbor>>,
    /// Refinement priority queues (`config.num_queues` of them).
    pub queues: Vec<Mutex<LeafQueue>>,
    /// Per-queue abandon flags for the refinement phase.
    pub done: Vec<AtomicBool>,
    /// Per-lane collect-phase state (DFS stack + dead-lane markers; one
    /// per pool lane; each lane locks only its own, so the locks are
    /// uncontended).
    pub lanes: Vec<Mutex<LaneScratch>>,
}

impl QueryScratch {
    /// Creates a scratch sized for an index with `word_len`-symbol words,
    /// `series_len`-point series, `num_queues` refinement queues and
    /// `lanes` pool lanes.
    pub fn new(word_len: usize, series_len: usize, num_queues: usize, lanes: usize) -> Self {
        QueryScratch {
            q: Vec::with_capacity(series_len),
            values: vec![0.0; word_len],
            transform: TransformScratch::default(),
            qword: Vec::with_capacity(word_len),
            root_lbd: RootLbd::empty(),
            knn: KnnSet::new(1),
            range: Mutex::new(Vec::new()),
            queues: (0..num_queues).map(|_| Mutex::new(BinaryHeap::new())).collect(),
            done: (0..num_queues).map(|_| AtomicBool::new(false)).collect(),
            lanes: (0..lanes).map(|_| Mutex::new(LaneScratch::default())).collect(),
        }
    }

    /// Re-arms the per-query state: empties the k-NN set for `k`
    /// neighbors, clears the queues (an abandoned queue keeps its
    /// leftover entries past the previous query) and lowers the abandon
    /// flags. Buffer capacities are retained throughout.
    pub fn begin(&mut self, k: usize) {
        self.knn.reset(k);
        self.range.get_mut().clear();
        for queue in &mut self.queues {
            queue.get_mut().clear();
        }
        for flag in &mut self.done {
            *flag.get_mut() = false;
        }
    }
}

/// The index's pool of scratches: a stack protected by one uncontended
/// mutex. Checkout pops (or lazily creates, during warm-up) a scratch;
/// dropping the guard pushes it back.
pub(crate) type ScratchPool = Mutex<Vec<Box<QueryScratch>>>;

/// RAII checkout of one [`QueryScratch`] from a [`ScratchPool`].
pub(crate) struct ScratchGuard<'a> {
    pool: &'a ScratchPool,
    scratch: Option<Box<QueryScratch>>,
}

impl<'a> ScratchGuard<'a> {
    /// Pops a scratch from `pool`, or builds one with `make` when the
    /// pool is empty (first queries, or more concurrent queries than ever
    /// before).
    pub fn checkout(pool: &'a ScratchPool, make: impl FnOnce() -> QueryScratch) -> Self {
        let scratch = pool.lock().pop();
        ScratchGuard { pool, scratch: Some(scratch.unwrap_or_else(|| Box::new(make()))) }
    }
}

impl Deref for ScratchGuard<'_> {
    type Target = QueryScratch;
    fn deref(&self) -> &QueryScratch {
        self.scratch.as_ref().expect("scratch present until drop")
    }
}

impl DerefMut for ScratchGuard<'_> {
    fn deref_mut(&mut self) -> &mut QueryScratch {
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard<'_> {
    fn drop(&mut self) {
        if let Some(scratch) = self.scratch.take() {
            self.pool.lock().push(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn scratch_checkout_returns_on_drop() {
        let pool: ScratchPool = Mutex::new(Vec::with_capacity(4));
        {
            let mut guard = ScratchGuard::checkout(&pool, || QueryScratch::new(8, 64, 2, 2));
            guard.begin(3);
            assert_eq!(guard.values.len(), 8);
            assert_eq!(guard.queues.len(), 2);
            assert!(pool.lock().is_empty());
        }
        assert_eq!(pool.lock().len(), 1);
        // A second checkout reuses the same allocation.
        let guard = ScratchGuard::checkout(&pool, || panic!("must reuse pooled scratch"));
        assert_eq!(guard.values.len(), 8);
    }

    #[test]
    fn begin_clears_leftover_state() {
        let mut s = QueryScratch::new(4, 16, 2, 1);
        s.queues[0].get_mut().push(Reverse(QueueEntry { lbd: 1.0, subtree: 0, node: 0 }));
        *s.done[1].get_mut() = true;
        s.knn.offer(crate::bsf::Neighbor { row: 1, dist_sq: 0.5 });
        s.begin(2);
        assert!(s.queues[0].get_mut().is_empty());
        assert!(!s.done[1].load(Ordering::Relaxed));
        assert_eq!(s.knn.bound(), f32::INFINITY);
    }
}
