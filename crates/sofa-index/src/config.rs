//! Index build and query configuration.

/// Configuration for [`crate::Index`] construction and querying.
///
/// Defaults follow the paper's setup (§V "Setup"): leaf capacity 20,000,
/// one priority queue per worker thread. `num_threads` defaults to the
/// machine's available parallelism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexConfig {
    /// Maximum series per leaf before it splits (`leaf-size`). The paper
    /// sweeps this in Figure 11 and settles on 20,000.
    pub leaf_capacity: usize,
    /// Parallel lanes of the index's persistent worker pool (created at
    /// build time and reused by every build/query/insert call). Ignored
    /// when a shared pool is supplied via `Index::build_with_pool` — the
    /// pool's own lane count applies there.
    pub num_threads: usize,
    /// Number of leaf priority queues used during query refinement;
    /// the paper sets it to the core count.
    pub num_queues: usize,
    /// Auto-repack threshold, in percent: after an online insert (or once
    /// per `insert_all` burst), when more than this percentage of the
    /// tree's leaves are un-packed (per-row fallback refinement) — and at
    /// least 8 in absolute terms, so tiny trees never repack on every
    /// insert — [`crate::Index::repack_leaves`] runs automatically, on
    /// the index's worker pool like every build phase, so long-running
    /// serving instances keep the batched sweeps without operator action.
    /// `None` disables the trigger (manual repacking only).
    /// Default: `Some(25)`.
    pub auto_repack_pct: Option<u32>,
    /// How many levels of internal nodes below each subtree root the
    /// collect phase prices through hierarchy-aware level blocks before
    /// falling through to the leaf fringe. A pruned level lane retires its
    /// whole descendant leaf range — the decisive saving on deep trees
    /// (concentrated root keys), while shallow subtrees skip the levels
    /// automatically. `0` disables the hierarchy sweep (leaf-only collect
    /// blocks). Default: [`crate::node::DEFAULT_COLLECT_LEVELS`].
    pub collect_levels: usize,
    /// Whether repacking builds the scalar-quantized refine tier: per-leaf
    /// int8 codes swept between the word lower bound and the exact `f32`
    /// scan, cutting refine-phase memory traffic ~4x for lanes the word
    /// bound cannot kill. Exactness is unaffected either way — the
    /// quantized bound is conservative and `f32` remains the final
    /// arbiter. Costs ~1 byte per stored value. Default: `true`.
    pub quant_refine: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        IndexConfig {
            leaf_capacity: 20_000,
            num_threads: threads,
            num_queues: threads,
            auto_repack_pct: Some(25),
            collect_levels: crate::node::DEFAULT_COLLECT_LEVELS,
            quant_refine: true,
        }
    }
}

impl IndexConfig {
    /// Config with `threads` workers and matching queue count.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        IndexConfig {
            num_threads: threads.max(1),
            num_queues: threads.max(1),
            ..Default::default()
        }
    }

    /// Sets the leaf capacity, returning the modified config.
    #[must_use]
    pub fn leaf_capacity(mut self, capacity: usize) -> Self {
        self.leaf_capacity = capacity.max(1);
        self
    }

    /// Sets (or, with `None`, disables) the auto-repack threshold — the
    /// percentage of un-packed leaves that triggers an automatic
    /// incremental repack ([`crate::Index::repack_incremental`]) after an
    /// online insert.
    #[must_use]
    pub fn auto_repack_pct(mut self, pct: Option<u32>) -> Self {
        self.auto_repack_pct = pct;
        self
    }

    /// Sets how many hierarchy levels the collect phase sweeps through
    /// level blocks before the leaf fringe (`0` = leaf-only collect, the
    /// pre-hierarchy behavior).
    #[must_use]
    pub fn collect_levels(mut self, levels: usize) -> Self {
        self.collect_levels = levels;
        self
    }

    /// Enables or disables the scalar-quantized refine tier (see the
    /// field docs; default on).
    #[must_use]
    pub fn quant_refine(mut self, enabled: bool) -> Self {
        self.quant_refine = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = IndexConfig::default();
        assert_eq!(c.leaf_capacity, 20_000);
        assert_eq!(c.num_queues, c.num_threads);
        assert!(c.num_threads >= 1);
        assert_eq!(c.auto_repack_pct, Some(25));
        assert_eq!(c.collect_levels, crate::node::DEFAULT_COLLECT_LEVELS);
        assert!(c.quant_refine);
    }

    #[test]
    fn quant_refine_configurable() {
        let c = IndexConfig::default().quant_refine(false);
        assert!(!c.quant_refine);
    }

    #[test]
    fn collect_levels_configurable() {
        let c = IndexConfig::default().collect_levels(0);
        assert_eq!(c.collect_levels, 0);
        let c = IndexConfig::default().collect_levels(9);
        assert_eq!(c.collect_levels, 9);
    }

    #[test]
    fn auto_repack_configurable() {
        let c = IndexConfig::default().auto_repack_pct(Some(5));
        assert_eq!(c.auto_repack_pct, Some(5));
        let off = IndexConfig::default().auto_repack_pct(None);
        assert_eq!(off.auto_repack_pct, None);
    }

    #[test]
    fn builder_methods() {
        let c = IndexConfig::with_threads(4).leaf_capacity(100);
        assert_eq!(c.num_threads, 4);
        assert_eq!(c.num_queues, 4);
        assert_eq!(c.leaf_capacity, 100);
    }

    #[test]
    fn zero_threads_clamped() {
        let c = IndexConfig::with_threads(0);
        assert_eq!(c.num_threads, 1);
        let c2 = IndexConfig::default().leaf_capacity(0);
        assert_eq!(c2.leaf_capacity, 1);
    }
}
