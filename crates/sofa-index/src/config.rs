//! Index build and query configuration.

/// Configuration for [`crate::Index`] construction and querying.
///
/// Defaults follow the paper's setup (§V "Setup"): leaf capacity 20,000,
/// one priority queue per worker thread. `num_threads` defaults to the
/// machine's available parallelism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexConfig {
    /// Maximum series per leaf before it splits (`leaf-size`). The paper
    /// sweeps this in Figure 11 and settles on 20,000.
    pub leaf_capacity: usize,
    /// Parallel lanes of the index's persistent worker pool (created at
    /// build time and reused by every build/query/insert call). Ignored
    /// when a shared pool is supplied via `Index::build_with_pool` — the
    /// pool's own lane count applies there.
    pub num_threads: usize,
    /// Number of leaf priority queues used during query refinement;
    /// the paper sets it to the core count.
    pub num_queues: usize,
}

impl Default for IndexConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        IndexConfig { leaf_capacity: 20_000, num_threads: threads, num_queues: threads }
    }
}

impl IndexConfig {
    /// Config with `threads` workers and matching queue count.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        IndexConfig {
            num_threads: threads.max(1),
            num_queues: threads.max(1),
            ..Default::default()
        }
    }

    /// Sets the leaf capacity, returning the modified config.
    #[must_use]
    pub fn leaf_capacity(mut self, capacity: usize) -> Self {
        self.leaf_capacity = capacity.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = IndexConfig::default();
        assert_eq!(c.leaf_capacity, 20_000);
        assert_eq!(c.num_queues, c.num_threads);
        assert!(c.num_threads >= 1);
    }

    #[test]
    fn builder_methods() {
        let c = IndexConfig::with_threads(4).leaf_capacity(100);
        assert_eq!(c.num_threads, 4);
        assert_eq!(c.num_queues, 4);
        assert_eq!(c.leaf_capacity, 100);
    }

    #[test]
    fn zero_threads_clamped() {
        let c = IndexConfig::with_threads(0);
        assert_eq!(c.num_threads, 1);
        let c2 = IndexConfig::default().leaf_capacity(0);
        assert_eq!(c2.leaf_capacity, 1);
    }
}
