//! Property-based tests of the system's core invariants.
//!
//! 1. Lower-bounding: for arbitrary data, every summarization's mindist
//!    never exceeds the true z-normalized Euclidean distance (the property
//!    GEMINI's exactness rests on).
//! 2. Index exactness: the SOFA index returns the same 1-NN distance as a
//!    brute-force scan for arbitrary datasets.
//! 3. Z-normalization: output has mean ~0 / std ~1 and is shift/scale
//!    invariant.

use proptest::prelude::*;
use sofa::baselines::UcrScan;
use sofa::simd::{euclidean_sq, znormalize};
use sofa::summaries::{
    mindist_scalar, mindist_simd, ISax, QueryContext, SaxConfig, Sfa, SfaConfig, Summarization,
};
use sofa::SofaIndex;

/// Arbitrary dataset: `rows` series of length `n`, values in [-10, 10],
/// with enough per-row structure to avoid constant series.
fn dataset_strategy(max_rows: usize, n: usize) -> impl Strategy<Value = Vec<f32>> {
    (8..max_rows).prop_flat_map(move |rows| proptest::collection::vec(-10.0f32..10.0, rows * n))
}

fn znorm_rows(data: &[f32], n: usize) -> Vec<f32> {
    let mut out = data.to_vec();
    for row in out.chunks_mut(n) {
        znormalize(row);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn sfa_mindist_is_a_lower_bound(data in dataset_strategy(40, 32)) {
        let n = 32;
        let z = znorm_rows(&data, n);
        let sfa = Sfa::learn(
            &z,
            n,
            &SfaConfig { word_len: 8, alphabet: 16, sample_ratio: 1.0, ..Default::default() },
        );
        let mut tr = sfa.transformer();
        let query = &z[..n];
        let ctx = QueryContext::new(&sfa, query);
        for cand in z.chunks(n) {
            let word = tr.word(cand, 8);
            let lbd = mindist_scalar(&ctx, &word);
            let ed = euclidean_sq(query, cand);
            prop_assert!(lbd <= ed * (1.0 + 1e-3) + 1e-3, "lbd={lbd} > ed={ed}");
        }
    }

    #[test]
    fn sax_mindist_is_a_lower_bound(data in dataset_strategy(40, 32)) {
        let n = 32;
        let z = znorm_rows(&data, n);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 64 });
        let mut tr = sax.transformer();
        let query = &z[n..2 * n];
        let ctx = QueryContext::new(&sax, query);
        for cand in z.chunks(n) {
            let word = tr.word(cand, 8);
            let lbd = mindist_scalar(&ctx, &word);
            let ed = euclidean_sq(query, cand);
            prop_assert!(lbd <= ed * (1.0 + 1e-3) + 1e-3, "lbd={lbd} > ed={ed}");
        }
    }

    #[test]
    fn simd_mindist_matches_scalar(data in dataset_strategy(30, 32)) {
        let n = 32;
        let z = znorm_rows(&data, n);
        let sfa = Sfa::learn(
            &z,
            n,
            &SfaConfig { word_len: 16, alphabet: 32, sample_ratio: 1.0, ..Default::default() },
        );
        let mut tr = sfa.transformer();
        let query = &z[..n];
        let ctx = QueryContext::new(&sfa, query);
        for cand in z.chunks(n) {
            let word = tr.word(cand, 16);
            let s = mindist_scalar(&ctx, &word);
            let v = mindist_simd(&ctx, &word, f32::INFINITY);
            prop_assert!((s - v).abs() <= 1e-4 * s.max(1.0), "scalar={s} simd={v}");
        }
    }

    #[test]
    fn index_matches_scan_exactly(data in dataset_strategy(60, 32)) {
        let n = 32;
        let index = SofaIndex::builder()
            .word_len(8)
            .leaf_capacity(8)
            .threads(2)
            .sample_ratio(1.0)
            .build_sofa(&data, n);
        // Constant series degrade to all-zero rows; the index must still
        // build and agree with the scan.
        let index = index.expect("build should not fail on valid shapes");
        let scan = UcrScan::new(&data, n, 2);
        let query = &data[..n];
        let a = index.nn(query).expect("query").dist_sq;
        let b = scan.nn(query).dist_sq;
        prop_assert!((a - b).abs() <= 2e-3 * a.max(1.0), "index={a} scan={b}");
    }

    #[test]
    fn znormalization_invariants(
        series in proptest::collection::vec(-100.0f32..100.0, 16..128),
        shift in -50.0f32..50.0,
        scale in 0.1f32..20.0,
    ) {
        let mut a = series.clone();
        znormalize(&mut a);
        // mean ~ 0, std ~ 1 (or all zeros for constant input)
        let mean: f32 = a.iter().sum::<f32>() / a.len() as f32;
        prop_assert!(mean.abs() < 1e-3, "mean={mean}");
        let var: f32 = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / a.len() as f32;
        prop_assert!(var < 1e-3 || (var - 1.0).abs() < 1e-2, "var={var}");

        // shift/scale invariance
        let mut b: Vec<f32> = series.iter().map(|&x| x * scale + shift).collect();
        znormalize(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn knn_results_sorted_and_bounded(data in dataset_strategy(50, 32), k in 1usize..12) {
        let n = 32;
        let index = SofaIndex::builder()
            .word_len(8)
            .leaf_capacity(10)
            .threads(2)
            .sample_ratio(1.0)
            .build_sofa(&data, n)
            .expect("build");
        let query = &data[..n];
        let got = index.knn(query, k).expect("query");
        prop_assert_eq!(got.len(), k.min(data.len() / n));
        for w in got.windows(2) {
            prop_assert!(w[0].dist_sq <= w[1].dist_sq);
            prop_assert!(w[0].row != w[1].row);
        }
    }
}
