//! Property-based tests of the system's core invariants.
//!
//! 1. Lower-bounding: for arbitrary data, every summarization's mindist
//!    never exceeds the true z-normalized Euclidean distance (the property
//!    GEMINI's exactness rests on).
//! 2. Index exactness: the SOFA index returns the same 1-NN distance as a
//!    brute-force scan for arbitrary datasets.
//! 3. Z-normalization: output has mean ~0 / std ~1 and is shift/scale
//!    invariant.

use proptest::prelude::*;
use sofa::baselines::UcrScan;
use sofa::simd::{
    euclidean_sq, quant_lower_bound, quant_lower_bound_portable, quant_lower_bound_scalar,
    znormalize, BLOCK_LANES,
};
use sofa::summaries::{
    mindist_level_block, mindist_node, mindist_node_block, mindist_scalar, mindist_simd, ISax,
    LevelBlocks, NodeBlock, QuantBlock, QuantGrid, QueryContext, SaxConfig, Sfa, SfaConfig,
    Summarization,
};
use sofa::SofaIndex;

/// Arbitrary dataset: `rows` series of length `n`, values in [-10, 10],
/// with enough per-row structure to avoid constant series.
fn dataset_strategy(max_rows: usize, n: usize) -> impl Strategy<Value = Vec<f32>> {
    (8..max_rows).prop_flat_map(move |rows| proptest::collection::vec(-10.0f32..10.0, rows * n))
}

fn znorm_rows(data: &[f32], n: usize) -> Vec<f32> {
    let mut out = data.to_vec();
    for row in out.chunks_mut(n) {
        znormalize(row);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn sfa_mindist_is_a_lower_bound(data in dataset_strategy(40, 32)) {
        let n = 32;
        let z = znorm_rows(&data, n);
        let sfa = Sfa::learn(
            &z,
            n,
            &SfaConfig { word_len: 8, alphabet: 16, sample_ratio: 1.0, ..Default::default() },
        );
        let mut tr = sfa.transformer();
        let query = &z[..n];
        let ctx = QueryContext::new(&sfa, query);
        for cand in z.chunks(n) {
            let word = tr.word(cand, 8);
            let lbd = mindist_scalar(&ctx, &word);
            let ed = euclidean_sq(query, cand);
            prop_assert!(lbd <= ed * (1.0 + 1e-3) + 1e-3, "lbd={lbd} > ed={ed}");
        }
    }

    #[test]
    fn sax_mindist_is_a_lower_bound(data in dataset_strategy(40, 32)) {
        let n = 32;
        let z = znorm_rows(&data, n);
        let sax = ISax::new(n, &SaxConfig { word_len: 8, alphabet: 64 });
        let mut tr = sax.transformer();
        let query = &z[n..2 * n];
        let ctx = QueryContext::new(&sax, query);
        for cand in z.chunks(n) {
            let word = tr.word(cand, 8);
            let lbd = mindist_scalar(&ctx, &word);
            let ed = euclidean_sq(query, cand);
            prop_assert!(lbd <= ed * (1.0 + 1e-3) + 1e-3, "lbd={lbd} > ed={ed}");
        }
    }

    #[test]
    fn simd_mindist_matches_scalar(data in dataset_strategy(30, 32)) {
        let n = 32;
        let z = znorm_rows(&data, n);
        let sfa = Sfa::learn(
            &z,
            n,
            &SfaConfig { word_len: 16, alphabet: 32, sample_ratio: 1.0, ..Default::default() },
        );
        let mut tr = sfa.transformer();
        let query = &z[..n];
        let ctx = QueryContext::new(&sfa, query);
        for cand in z.chunks(n) {
            let word = tr.word(cand, 16);
            let s = mindist_scalar(&ctx, &word);
            let v = mindist_simd(&ctx, &word, f32::INFINITY);
            prop_assert!((s - v).abs() <= 1e-4 * s.max(1.0), "scalar={s} simd={v}");
        }
    }

    #[test]
    fn index_matches_scan_exactly(data in dataset_strategy(60, 32)) {
        let n = 32;
        let index = SofaIndex::builder()
            .word_len(8)
            .leaf_capacity(8)
            .threads(2)
            .sample_ratio(1.0)
            .build_sofa(&data, n);
        // Constant series degrade to all-zero rows; the index must still
        // build and agree with the scan.
        let index = index.expect("build should not fail on valid shapes");
        let scan = UcrScan::new(&data, n, 2);
        let query = &data[..n];
        let a = index.nn(query).expect("query").dist_sq;
        let b = scan.nn(query).dist_sq;
        prop_assert!((a - b).abs() <= 2e-3 * a.max(1.0), "index={a} scan={b}");
    }

    #[test]
    fn node_block_is_bitwise_equal_to_scalar_mindist_node_sax(
        data in dataset_strategy(40, 32),
        n_nodes in 1usize..=17,
        bit_depths in proptest::collection::vec(0u8..=8, 17 * 8),
        // Scale the query down to (and past) the denormal range: the
        // kernels must agree bit-for-bit on denormal arithmetic too.
        scale_sel in 0usize..4,
    ) {
        let scale_exp = [0i32, -20, -38, -44][scale_sel];
        let n = 32;
        let l = 8;
        let z = znorm_rows(&data, n);
        let sax = ISax::new(n, &SaxConfig { word_len: l, alphabet: 256 });
        let mut tr = sax.transformer();
        // Node labels: each node keeps `bit_depths` most significant bits
        // of a real word's symbols (0 bits = unconstrained position).
        let nodes: Vec<(Vec<u8>, Vec<u8>)> = (0..n_nodes)
            .map(|i| {
                let word = tr.word(&z[(i % (z.len() / n)) * n..][..n], l);
                let bits: Vec<u8> = (0..l).map(|j| bit_depths[i * l + j]).collect();
                let prefixes: Vec<u8> = word
                    .iter()
                    .zip(bits.iter())
                    .map(|(&s, &b)| if b == 0 { 0 } else { s >> (8 - b) })
                    .collect();
                (prefixes, bits)
            })
            .collect();
        let refs: Vec<(&[u8], &[u8])> =
            nodes.iter().map(|(p, b)| (p.as_slice(), b.as_slice())).collect();
        let block = NodeBlock::build(&sax, &refs);
        prop_assert_eq!(block.n(), n_nodes);
        // A query scaled toward denormals (not z-normalized on purpose —
        // QueryContext::new takes the values as-is, so tiny PAA means
        // reach the kernel).
        let scale = 10f32.powi(scale_exp);
        let query: Vec<f32> = z[..n].iter().map(|&v| v * scale).collect();
        let ctx = QueryContext::new(&sax, &query);
        let mut out = [0.0f32; BLOCK_LANES];
        for g in 0..block.n_groups() {
            let abandoned = mindist_node_block(&ctx, &block, g, f32::INFINITY, &mut out);
            prop_assert!(!abandoned, "nothing abandons against an infinite bound");
            for (lane, &lb) in out.iter().enumerate().take(block.lanes_in(g)) {
                let (p, b) = &nodes[g * BLOCK_LANES + lane];
                let scalar = mindist_node(&ctx, p, b);
                // Bit-for-bit, across tiers: CI replays this proptest
                // under SOFA_FORCE_SCALAR=1 as well, and the sofa-simd
                // proptests pin the scalar/portable/AVX2 block kernels to
                // identical bits, so equality here covers the whole
                // dispatch matrix.
                prop_assert_eq!(
                    lb.to_bits(), scalar.to_bits(),
                    "group {} lane {}: block {} vs scalar {}", g, lane, lb, scalar
                );
            }
        }
    }

    #[test]
    fn node_block_is_bitwise_equal_to_scalar_mindist_node_sfa(
        data in dataset_strategy(30, 32),
        n_nodes in 1usize..=17,
        bit_depth in 0u8..=5,
    ) {
        let n = 32;
        let l = 8;
        let z = znorm_rows(&data, n);
        let sfa = Sfa::learn(
            &z,
            n,
            &SfaConfig { word_len: l, alphabet: 32, sample_ratio: 1.0, ..Default::default() },
        );
        let mut tr = sfa.transformer();
        let rows = z.len() / n;
        let nodes: Vec<(Vec<u8>, Vec<u8>)> = (0..n_nodes)
            .map(|i| {
                let word = tr.word(&z[(i % rows) * n..][..n], l);
                let b = (bit_depth + i as u8) % 6; // mixed depths incl. 0
                let prefixes: Vec<u8> =
                    word.iter().map(|&s| if b == 0 { 0 } else { s >> (5 - b) }).collect();
                (prefixes, vec![b; l])
            })
            .collect();
        let refs: Vec<(&[u8], &[u8])> =
            nodes.iter().map(|(p, b)| (p.as_slice(), b.as_slice())).collect();
        let block = NodeBlock::build(&sfa, &refs);
        let ctx = QueryContext::new(&sfa, &z[..n]);
        let mut out = [0.0f32; BLOCK_LANES];
        for g in 0..block.n_groups() {
            let _ = mindist_node_block(&ctx, &block, g, f32::INFINITY, &mut out);
            for (lane, &lb) in out.iter().enumerate().take(block.lanes_in(g)) {
                let (p, b) = &nodes[g * BLOCK_LANES + lane];
                prop_assert_eq!(lb.to_bits(), mindist_node(&ctx, p, b).to_bits());
            }
        }
    }

    #[test]
    fn level_blocks_are_bitwise_equal_to_scalar_mindist_node(
        data in dataset_strategy(40, 32),
        level_sizes in proptest::collection::vec(1usize..=11, 1..=5),
        bit_depths in proptest::collection::vec(0u8..=8, 5 * 11),
        scale_sel in 0usize..4,
    ) {
        // The hierarchy-aware collect sweep prices one NodeBlock per tree
        // level; every lane of every level must agree with the scalar
        // per-node evaluation to the bit, across dispatch tiers (CI
        // replays this under SOFA_FORCE_SCALAR=1; the sofa-simd proptests
        // pin the tiers to identical bits).
        let scale_exp = [0i32, -20, -38, -44][scale_sel];
        let n = 32;
        let l = 8;
        let z = znorm_rows(&data, n);
        let sax = ISax::new(n, &SaxConfig { word_len: l, alphabet: 256 });
        let mut tr = sax.transformer();
        let rows = z.len() / n;
        let mut flat_idx = 0usize;
        let levels_owned: Vec<Vec<(Vec<u8>, Vec<u8>)>> = level_sizes
            .iter()
            .map(|&count| {
                (0..count)
                    .map(|_| {
                        let word = tr.word(&z[(flat_idx % rows) * n..][..n], l);
                        let bits: Vec<u8> =
                            (0..l).map(|j| bit_depths[(flat_idx * l + j) % bit_depths.len()]).collect();
                        flat_idx += 1;
                        let prefixes: Vec<u8> = word
                            .iter()
                            .zip(bits.iter())
                            .map(|(&s, &b)| if b == 0 { 0 } else { s >> (8 - b) })
                            .collect();
                        (prefixes, bits)
                    })
                    .collect()
            })
            .collect();
        let level_refs: Vec<Vec<(&[u8], &[u8])>> = levels_owned
            .iter()
            .map(|lvl| lvl.iter().map(|(p, b)| (p.as_slice(), b.as_slice())).collect())
            .collect();
        let blocks = LevelBlocks::build(&sax, &level_refs);
        prop_assert_eq!(blocks.n_levels(), level_sizes.len());
        let scale = 10f32.powi(scale_exp);
        let query: Vec<f32> = z[..n].iter().map(|&v| v * scale).collect();
        let ctx = QueryContext::new(&sax, &query);
        let mut out = [0.0f32; BLOCK_LANES];
        for (lvl, nodes) in levels_owned.iter().enumerate() {
            let block = blocks.level(lvl);
            prop_assert_eq!(block.n(), nodes.len());
            for g in 0..block.n_groups() {
                let abandoned = mindist_level_block(&ctx, &blocks, lvl, g, f32::INFINITY, &mut out);
                prop_assert!(!abandoned, "nothing abandons against an infinite bound");
                for (lane, &lb) in out.iter().enumerate().take(block.lanes_in(g)) {
                    let (p, b) = &nodes[g * BLOCK_LANES + lane];
                    let scalar = mindist_node(&ctx, p, b);
                    prop_assert_eq!(
                        lb.to_bits(), scalar.to_bits(),
                        "level {} group {} lane {}: block {} vs scalar {}", lvl, g, lane, lb, scalar
                    );
                }
            }
        }
    }

    #[test]
    fn quant_lower_bound_is_sound_and_bit_identical_across_tiers(
        raw in proptest::collection::vec(-10.0f32..10.0, 2 * 257..42 * 257),
        len_sel in 0usize..6,
        // Scale the rows down to (and past) the denormal range: the
        // quantizer must stay conservative (or bow out) on tiny values.
        scale_sel in 0usize..4,
        bsf_frac in 0.05f64..1.5,
    ) {
        // Ragged lengths around the group and checkpoint boundaries.
        let n = [1usize, 7, 8, 64, 129, 257][len_sel];
        let scale = 10f32.powi([0i32, -20, -38, -44][scale_sel]);
        let rows = (raw.len() / n).clamp(1, 41);
        let data: Vec<f32> = raw[..rows * n].iter().map(|&v| v * scale).collect();
        let query: Vec<f32> = raw[raw.len() - n..].iter().map(|&v| v * scale).collect();
        let Some(grid) = QuantGrid::train(&data, n) else {
            // Degenerate (constant / underflowed) data: the tier bows
            // out and the index keeps the word -> f32 path. Nothing to
            // check.
            return;
        };
        let qb = QuantBlock::build(&grid, &data, n).expect("grid was trained on this data");
        prop_assert_eq!(qb.n(), rows);
        let mut qcodes = vec![0u8; n];
        let err_q = grid.quantize_query(&query, &mut qcodes);
        // f64 exact-distance reference: at denormal scales the f32 sum
        // underflows to 0 while the (valid) quant bound stays positive.
        // The index never sees that band — z-normalized f32 rows make
        // distances either exactly 0 or far above it — so the math is
        // checked against the un-underflowed value.
        let ed64 = |r: usize| -> f64 {
            query
                .iter()
                .zip(&data[r * n..(r + 1) * n])
                .map(|(&a, &b)| (f64::from(a) - f64::from(b)).powi(2))
                .sum()
        };
        let bsf = f64::from(euclidean_sq(&query, &data[..n])) * bsf_frac;
        let nothr = [i32::MAX; BLOCK_LANES];
        let mut thr = [0i32; BLOCK_LANES];
        let mut sums = [0i32; BLOCK_LANES];
        for g in 0..qb.n_groups() {
            let codes = qb.group_codes(g);
            let errs = qb.group_errs(g);
            // Tier agreement is exact: integer sums, bit for bit.
            let mut s_scalar = [0i32; BLOCK_LANES];
            let mut s_portable = [0i32; BLOCK_LANES];
            quant_lower_bound_scalar(&qcodes, codes, &nothr, &mut s_scalar);
            quant_lower_bound_portable(&qcodes, codes, &nothr, &mut s_portable);
            let abandoned = quant_lower_bound(&qcodes, codes, &nothr, &mut sums);
            prop_assert!(!abandoned, "nothing abandons against MAX thresholds");
            prop_assert_eq!(&sums, &s_scalar);
            prop_assert_eq!(&sums, &s_portable);
            // The reconstructed bound never exceeds the exact distance.
            for lane in 0..BLOCK_LANES {
                let r = (g * BLOCK_LANES + lane).min(rows - 1);
                let ed = ed64(r);
                let lb = qb.lane_bound(sums[lane], errs[lane], err_q);
                prop_assert!(
                    lb <= ed * (1.0 + 1e-9),
                    "group {} lane {}: quant bound {} > exact {}", g, lane, lb, ed
                );
            }
            // Threshold soundness end-to-end: a whole-group abandon at
            // `bsf` means every lane's exact distance is at least `bsf`.
            qb.thresholds(g, bsf as f32, err_q, &mut thr);
            if quant_lower_bound(&qcodes, codes, &thr, &mut sums) {
                for lane in 0..BLOCK_LANES {
                    let r = (g * BLOCK_LANES + lane).min(rows - 1);
                    prop_assert!(
                        ed64(r) >= bsf * (1.0 - 1e-6),
                        "abandoned lane below bsf: {} < {}", ed64(r), bsf
                    );
                }
            }
        }
    }

    #[test]
    fn znormalization_invariants(
        series in proptest::collection::vec(-100.0f32..100.0, 16..128),
        shift in -50.0f32..50.0,
        scale in 0.1f32..20.0,
    ) {
        let mut a = series.clone();
        znormalize(&mut a);
        // mean ~ 0, std ~ 1 (or all zeros for constant input)
        let mean: f32 = a.iter().sum::<f32>() / a.len() as f32;
        prop_assert!(mean.abs() < 1e-3, "mean={mean}");
        let var: f32 = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / a.len() as f32;
        prop_assert!(var < 1e-3 || (var - 1.0).abs() < 1e-2, "var={var}");

        // shift/scale invariance
        let mut b: Vec<f32> = series.iter().map(|&x| x * scale + shift).collect();
        znormalize(&mut b);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn knn_results_sorted_and_bounded(data in dataset_strategy(50, 32), k in 1usize..12) {
        let n = 32;
        let index = SofaIndex::builder()
            .word_len(8)
            .leaf_capacity(10)
            .threads(2)
            .sample_ratio(1.0)
            .build_sofa(&data, n)
            .expect("build");
        let query = &data[..n];
        let got = index.knn(query, k).expect("query");
        prop_assert_eq!(got.len(), k.min(data.len() / n));
        for w in got.windows(2) {
            prop_assert!(w[0].dist_sq <= w[1].dist_sq);
            prop_assert!(w[0].row != w[1].row);
        }
    }
}
