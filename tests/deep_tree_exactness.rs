//! Deep-tree exactness under churn: the serving cycle this PR makes
//! first-class — concentrated root keys (one hierarchically clustered
//! prototype family, so the index builds deep subtrees with level
//! blocks), online insert bursts that leave lanes stale mid-query-stream,
//! and incremental repacks — must return brute-force answers at every
//! stage, for 500 queries across the suite.
//!
//! CI replays this binary under `SOFA_FORCE_SCALAR=1` as well, so the
//! level-order collect sweep is proven exact on every dispatch tier.

use sofa::baselines::FlatL2;
use sofa::data::registry;
use sofa::SofaIndex;

/// Builds the deep-tree workload: a concentrated Deep1b-like archive.
fn deep_spec() -> sofa::data::DatasetSpec {
    let mut spec = registry()
        .into_iter()
        .find(|s| s.name == "Deep1b")
        .expect("registry")
        .with_concentration(0.97);
    spec.instance_noise = 0.25;
    spec
}

/// Asserts `index` agrees with `flat` on every query (k-NN distances
/// within float tolerance, rank by rank).
fn assert_exact(index: &SofaIndex, flat: &FlatL2, queries: &[f32], n: usize, k: usize, tag: &str) {
    for (qi, q) in queries.chunks(n).enumerate() {
        let got = index.knn(q, k).expect("query");
        let want = flat.knn_one(q, k);
        assert_eq!(got.len(), want.len(), "{tag} query {qi}");
        for (rank, (g, w)) in got.iter().zip(want.iter()).enumerate() {
            let tol = 1e-3 * w.dist_sq.max(1.0);
            assert!(
                (g.dist_sq - w.dist_sq).abs() <= tol,
                "{tag} query {qi} rank {rank}: sofa {g:?} vs flat {w:?}"
            );
        }
    }
}

#[test]
fn deep_tree_serving_stays_exact_through_inserts_and_incremental_repacks() {
    let spec = deep_spec();
    let count = 3_000usize;
    // 5 phases x 100 queries = 500 exactness checks across the churn
    // cycle (the CI forced-scalar leg doubles that across tiers).
    let per_phase = 100usize;
    let dataset = spec.generate(count + count / 4, 2 * per_phase);
    let n = dataset.series_len();
    let all = dataset.data();
    let initial = count * n;

    // Query stream: hold-out probes (same cluster family, never indexed)
    // plus known-item near-duplicates of indexed rows.
    let holdout = dataset.queries();
    let dups: Vec<f32> = (0..per_phase)
        .flat_map(|qi| {
            let row = (qi * 131) % count;
            dataset
                .series(row)
                .iter()
                .enumerate()
                .map(|(t, &x)| x * (1.0 + 0.001 * (((t + qi) % 5) as f32 - 2.0)))
                .collect::<Vec<f32>>()
        })
        .collect();

    // Small leaves + a 12-symbol word force genuinely deep subtrees at
    // this scale; auto-repack is off so stale lanes persist until the
    // explicit incremental repacks below.
    let mut index = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(8)
        .word_len(12)
        .sample_ratio(0.05)
        .auto_repack_pct(None)
        .build_sofa(&all[..initial], n)
        .expect("build");
    let stats = index.stats();
    assert!(stats.max_depth >= 4, "workload must build a deep tree: {stats:?}");

    // Phase 1: freshly built (every leaf packed, level blocks live).
    let flat = FlatL2::new(&all[..initial], n, 2);
    assert_exact(&index, &flat, &holdout[..per_phase * n], n, 3, "phase1-holdout");

    // Phase 2: known-item stream on the packed tree; also prove the
    // hierarchy actually engages under the active dispatch tier.
    let mut level_groups = 0usize;
    for q in dups.chunks(n) {
        let (_, s) = index.knn_with_stats(q, 1).expect("stats query");
        level_groups += s.collect_level_groups_swept;
    }
    assert!(level_groups > 0, "deep workload must exercise the level sweep");
    assert_exact(&index, &flat, &dups, n, 1, "phase2-dups");

    // Phase 3: first insert burst — lanes go stale mid-stream (splits
    // keep their parent-interval bounds); queries must stay exact with
    // NO repack.
    let burst1 = initial + (count / 8) * n;
    index.insert_all(&all[initial..burst1]).expect("insert");
    assert!(
        index.stats().fallback_leaf_pct > 0.0,
        "burst must leave stale leaves: {:?}",
        index.stats()
    );
    let flat = FlatL2::new(&all[..burst1], n, 2);
    assert_exact(&index, &flat, &holdout[..per_phase * n], n, 3, "phase3-stale");

    // Phase 4: incremental repack (only stale subtrees rebuild), then the
    // second half of the hold-out stream.
    index.repack_incremental();
    let s = index.stats();
    assert_eq!(s.packed_leaves, s.leaves, "incremental repack must restore packing");
    assert_eq!(s.fallback_leaf_pct, 0.0);
    assert_exact(&index, &flat, &holdout[per_phase * n..], n, 5, "phase4-repacked");

    // Phase 5: second burst + incremental repack, replay the known-item
    // stream (their rows moved slots in the repack).
    index.insert_all(&all[burst1..]).expect("insert");
    index.repack_incremental();
    let flat = FlatL2::new(all, n, 2);
    assert_exact(&index, &flat, &dups, n, 3, "phase5-after-churn");
}
