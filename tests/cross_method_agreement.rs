//! The exactness contract across all four methods of the paper's
//! evaluation: SOFA, MESSI, UCR-Suite-P and FlatL2 must return the same
//! nearest-neighbor distances on every dataset profile of the benchmark
//! registry, because all four are exact.

use sofa::baselines::{FlatL2, UcrScan};
use sofa::data::registry;
use sofa::{MessiIndex, SofaIndex};

#[test]
fn all_methods_agree_on_every_dataset_profile() {
    // A scaled-down slice of the 17-dataset registry covering all three
    // frequency profiles.
    let names = ["LenDB", "OBS", "Astro", "SIFT1b", "Deep1b", "SALD"];
    for spec in registry().into_iter().filter(|s| names.contains(&s.name)) {
        let dataset = spec.generate(600, 3);
        let n = dataset.series_len();

        let sofa = SofaIndex::builder()
            .leaf_capacity(64)
            .threads(2)
            .sample_ratio(0.25)
            .build_sofa(dataset.data(), n)
            .expect("sofa build");
        let messi = MessiIndex::builder()
            .leaf_capacity(64)
            .threads(2)
            .build_messi(dataset.data(), n)
            .expect("messi build");
        let scan = UcrScan::new(dataset.data(), n, 2);
        let flat = FlatL2::new(dataset.data(), n, 2);

        for qi in 0..dataset.n_queries() {
            let q = dataset.query(qi);
            let a = sofa.nn(q).expect("sofa").dist_sq;
            let b = messi.nn(q).expect("messi").dist_sq;
            let c = scan.nn(q).dist_sq;
            let d = flat.nn(q).dist_sq;
            let tol = 2e-3 * a.max(1.0);
            assert!((a - b).abs() < tol, "{}: sofa {a} vs messi {b}", spec.name);
            assert!((a - c).abs() < tol, "{}: sofa {a} vs scan {c}", spec.name);
            assert!((a - d).abs() < tol, "{}: sofa {a} vs flat {d}", spec.name);
        }
    }
}

#[test]
fn knn_sets_agree_between_sofa_and_scan() {
    let spec = registry().into_iter().find(|s| s.name == "SCEDC").expect("registry");
    let dataset = spec.generate(500, 2);
    let n = dataset.series_len();
    let sofa = SofaIndex::builder()
        .leaf_capacity(50)
        .threads(2)
        .sample_ratio(0.25)
        .build_sofa(dataset.data(), n)
        .expect("build");
    let scan = UcrScan::new(dataset.data(), n, 2);
    for qi in 0..dataset.n_queries() {
        let q = dataset.query(qi);
        for k in [1usize, 5, 20] {
            let a = sofa.knn(q, k).expect("query");
            let b = scan.knn(q, k);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert!(
                    (x.dist_sq - y.dist_sq).abs() < 2e-3 * x.dist_sq.max(1.0),
                    "k={k}: {x:?} vs {y:?}"
                );
            }
        }
    }
}

#[test]
fn sofa_prunes_more_than_messi_on_high_frequency_data() {
    // The mechanism behind the paper's headline speedup (Figure 12): on
    // high-frequency data SOFA's lower bounds prune far more candidate
    // series than MESSI's.
    let spec = registry().into_iter().find(|s| s.name == "LenDB").expect("registry");
    let dataset = spec.generate(2000, 5);
    let n = dataset.series_len();
    let sofa = SofaIndex::builder()
        .leaf_capacity(100)
        .threads(2)
        .sample_ratio(0.25)
        .build_sofa(dataset.data(), n)
        .expect("build");
    let messi = MessiIndex::builder()
        .leaf_capacity(100)
        .threads(2)
        .build_messi(dataset.data(), n)
        .expect("build");
    let mut sofa_refined = 0usize;
    let mut messi_refined = 0usize;
    for qi in 0..dataset.n_queries() {
        let q = dataset.query(qi);
        sofa_refined += sofa.knn_with_stats(q, 1).expect("query").1.series_refined;
        messi_refined += messi.knn_with_stats(q, 1).expect("query").1.series_refined;
    }
    assert!(
        sofa_refined * 2 < messi_refined,
        "SOFA should refine far fewer series: sofa={sofa_refined} messi={messi_refined}"
    );
}
