//! Query-scratch reuse never leaks state between queries.
//!
//! Since the collect-batching PR, every per-query buffer (normalized
//! query, context values, query word, root-penalty table, k-NN heap,
//! refinement queues, DFS stacks) comes from a pooled `QueryScratch`
//! that is reset and reused across queries — a 1-lane index answers its
//! entire lifetime of queries from **one** scratch. A reset bug (a stale
//! queue entry, an un-lowered abandon flag, a leftover k-NN bound, a
//! dirty DFT buffer) would poison *subsequent* queries, not the first
//! one, so this suite replays 1000 queries of varying `k` through one
//! index and checks every single answer against a scalar brute force.

use sofa::{Neighbor, SofaIndex};

fn dataset(count: usize, n: usize, seed: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(count * n);
    for r in 0..count {
        for t in 0..n {
            let x = t as f32;
            let r = (r + seed) as f32;
            data.push(
                (x * 0.23 + r).sin()
                    + 0.7 * (x * (0.3 + (r % 13.0) * 0.09) + r * 0.5).cos()
                    + 0.2 * (x * 1.7 - r).sin(),
            );
        }
    }
    data
}

/// Brute-force k-NN over z-normalized copies — deterministic ground
/// truth, recomputed from scratch for every query (no shared state to
/// leak by construction).
fn brute_force_knn(zdata: &[f32], n: usize, query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut q = query.to_vec();
    sofa::simd::znormalize(&mut q);
    let mut all: Vec<Neighbor> = zdata
        .chunks(n)
        .enumerate()
        .map(|(row, series)| Neighbor {
            row: row as u32,
            dist_sq: sofa::simd::euclidean_sq_scalar(&q, series),
        })
        .collect();
    all.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.row.cmp(&b.row)));
    all.truncate(k);
    all
}

fn assert_matches(got: &[Neighbor], want: &[Neighbor], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}");
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(g.row, w.row, "{what}: {got:?} vs {want:?}");
        let tol = 1e-3 * w.dist_sq.max(1.0);
        assert!((g.dist_sq - w.dist_sq).abs() <= tol, "{what}: {g:?} vs {w:?}");
    }
}

#[test]
fn one_scratch_serves_1000_queries_exactly() {
    let n = 64;
    let count = 400;
    let data = dataset(count, n, 0);
    let mut zdata = data.clone();
    for row in zdata.chunks_mut(n) {
        sofa::simd::znormalize(row);
    }
    // threads(1): the serial path, where one pooled scratch is checked
    // out and returned by every single query — maximum reuse pressure.
    let sofa = SofaIndex::builder()
        .threads(1)
        .leaf_capacity(24)
        .sample_ratio(0.5)
        .build_sofa(&data, n)
        .expect("build");

    let n_queries = 1000;
    let queries = dataset(n_queries, n, 5000);
    // `knn_into` with one shared output buffer: the fully reused path.
    let mut out: Vec<Neighbor> = Vec::new();
    for (qi, q) in queries.chunks(n).enumerate() {
        // Vary k so the reusable heap grows and shrinks between queries;
        // any capacity- or bound-carryover would surface as a wrong set.
        let k = [1usize, 3, 7][qi % 3];
        let want = brute_force_knn(&zdata, n, q, k);
        sofa.knn_into(q, k, &mut out).expect("query");
        assert_matches(&out, &want, &format!("knn_into query {qi} k={k}"));
        // Every 97th query, cross-check the allocating API against the
        // same scratch state.
        if qi % 97 == 0 {
            let got = sofa.knn(q, k).expect("query");
            assert_matches(&got, &want, &format!("knn query {qi} k={k}"));
        }
    }
}

#[test]
fn batch_lanes_reuse_scratches_exactly() {
    let n = 64;
    let count = 300;
    let data = dataset(count, n, 3);
    let mut zdata = data.clone();
    for row in zdata.chunks_mut(n) {
        sofa::simd::znormalize(row);
    }
    // Multi-lane pool: `knn_batch` gives each lane one scratch for the
    // whole batch, and single `knn` calls in between recycle the same
    // pool entries.
    let sofa = SofaIndex::builder()
        .threads(4)
        .leaf_capacity(20)
        .sample_ratio(0.5)
        .build_sofa(&data, n)
        .expect("build");

    let queries = dataset(250, n, 7777);
    for k in [1usize, 5] {
        let batch = sofa.knn_batch(&queries, k).expect("batch");
        for (qi, q) in queries.chunks(n).enumerate() {
            let want = brute_force_knn(&zdata, n, q, k);
            assert_matches(&batch[qi], &want, &format!("batch query {qi} k={k}"));
        }
    }
    // Interleave batch and single calls: scratches must come back clean
    // either way.
    for (qi, q) in queries.chunks(n).take(50).enumerate() {
        let want = brute_force_knn(&zdata, n, q, 2);
        let got = sofa.knn(q, 2).expect("query");
        assert_matches(&got, &want, &format!("post-batch query {qi}"));
    }
}
