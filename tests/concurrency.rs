//! Concurrency suite for the persistent worker-pool runtime.
//!
//! The two guarantees the `sofa-exec` refactor must uphold:
//!
//! 1. **Pool reuse under concurrent callers** — one index answers
//!    queries from many caller threads at once (the serving scenario),
//!    every answer exactly matching the `FlatL2` ground truth, with no
//!    deadlock between scopes interleaving on the shared pool.
//! 2. **Batch/serial equivalence** — `knn_batch` returns, for every
//!    query of the batch, exactly what per-query `knn` returns.
//!
//! Caller threads are simulated with `std::thread::scope` *here only*:
//! the library crates themselves spawn nothing — all their parallelism
//! runs on `ExecPool` lanes.

use sofa::baselines::FlatL2;
use sofa::{ExecPool, MessiIndex, Neighbor, SofaIndex};
use std::sync::Arc;

fn dataset(count: usize, n: usize, seed: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(count * n);
    for r in 0..count {
        for t in 0..n {
            let x = t as f32;
            let r = (r + seed) as f32;
            data.push((x * 0.21 + r).sin() + 0.7 * (x * (0.3 + (r % 9.0) * 0.13)).cos());
        }
    }
    data
}

fn assert_same(got: &[Neighbor], want: &[Neighbor], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: result sizes differ");
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(g.row, w.row, "{what}: {got:?} vs {want:?}");
        assert!(
            (g.dist_sq - w.dist_sq).abs() <= 1e-3 * w.dist_sq.max(1.0),
            "{what}: {g:?} vs {w:?}"
        );
    }
}

/// (a) One `SofaIndex` serving many concurrent caller threads returns
/// exact results matching `FlatL2` for every query of every caller.
#[test]
fn concurrent_callers_get_exact_answers() {
    let n = 64;
    let data = dataset(600, n, 0);
    let index = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(50)
        .sample_ratio(0.3)
        .build_sofa(&data, n)
        .expect("build");
    let truth = FlatL2::new(&data, n, 1);

    let n_callers = 4;
    let queries_per_caller = 8;
    std::thread::scope(|s| {
        for caller in 0..n_callers {
            let index = &index;
            let truth = &truth;
            s.spawn(move || {
                let queries = dataset(queries_per_caller, n, 1000 + caller * 97);
                for (qi, q) in queries.chunks(n).enumerate() {
                    let got = index.knn(q, 3).expect("query");
                    let want = truth.knn_one(q, 3);
                    assert_same(&got, &want, &format!("caller {caller} query {qi}"));
                }
            });
        }
    });
}

/// (a') The same, on one *shared* pool serving two different indexes at
/// once — the server-embedding scenario the tentpole targets.
#[test]
fn shared_pool_two_indexes_concurrent_callers() {
    let n = 64;
    let data = dataset(400, n, 3);
    let pool = ExecPool::shared(2);
    let sofa = SofaIndex::builder()
        .pool(Arc::clone(&pool))
        .leaf_capacity(40)
        .sample_ratio(0.3)
        .build_sofa(&data, n)
        .expect("build sofa");
    let messi = MessiIndex::builder()
        .pool(Arc::clone(&pool))
        .leaf_capacity(40)
        .build_messi(&data, n)
        .expect("build messi");
    let truth = FlatL2::new(&data, n, 1);

    std::thread::scope(|s| {
        for caller in 0..4 {
            let sofa = &sofa;
            let messi = &messi;
            let truth = &truth;
            s.spawn(move || {
                let queries = dataset(6, n, 5000 + caller * 31);
                for q in queries.chunks(n) {
                    let want = truth.knn_one(q, 2);
                    assert_same(&sofa.knn(q, 2).expect("sofa"), &want, "sofa");
                    assert_same(&messi.knn(q, 2).expect("messi"), &want, "messi");
                }
            });
        }
    });
}

/// (b) `knn_batch` equals per-query `knn` for every query in the batch,
/// for both tree indexes and the flat baseline, across thread counts.
#[test]
fn knn_batch_equals_per_query_knn() {
    let n = 64;
    let data = dataset(500, n, 7);
    let queries = dataset(20, n, 9999);
    for threads in [1usize, 2, 3] {
        let sofa = SofaIndex::builder()
            .threads(threads)
            .leaf_capacity(40)
            .sample_ratio(0.3)
            .build_sofa(&data, n)
            .expect("build");
        let messi = MessiIndex::builder()
            .threads(threads)
            .leaf_capacity(40)
            .build_messi(&data, n)
            .expect("build");
        let flat = FlatL2::new(&data, n, threads);
        for k in [1usize, 5] {
            let sofa_batch = sofa.knn_batch(&queries, k).expect("batch");
            let messi_batch = messi.knn_batch(&queries, k).expect("batch");
            let flat_batch = flat.knn_batch(&queries, k);
            for (qi, q) in queries.chunks(n).enumerate() {
                let label = format!("threads={threads} k={k} query {qi}");
                assert_eq!(
                    sofa_batch[qi],
                    sofa.knn(q, k).expect("query"),
                    "sofa batch != knn ({label})"
                );
                assert_eq!(
                    messi_batch[qi],
                    messi.knn(q, k).expect("query"),
                    "messi batch != knn ({label})"
                );
                assert_eq!(flat_batch[qi], flat.knn_one(q, k), "flat batch != knn ({label})");
            }
        }
    }
}

/// Concurrent `knn_batch` calls from several caller threads interleave
/// on the pool without deadlock or wrong answers.
#[test]
fn concurrent_batches_share_the_pool() {
    let n = 64;
    let data = dataset(400, n, 11);
    let index = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(40)
        .sample_ratio(0.3)
        .build_sofa(&data, n)
        .expect("build");
    let truth = FlatL2::new(&data, n, 1);
    std::thread::scope(|s| {
        for caller in 0..3 {
            let index = &index;
            let truth = &truth;
            s.spawn(move || {
                let queries = dataset(10, n, 2000 + caller * 53);
                let batch = index.knn_batch(&queries, 2).expect("batch");
                for (qi, q) in queries.chunks(n).enumerate() {
                    assert_same(
                        &batch[qi],
                        &truth.knn_one(q, 2),
                        &format!("caller {caller} query {qi}"),
                    );
                }
            });
        }
    });
}

/// Online inserts still compose with pool-backed queries: insert from
/// the owning thread, then serve concurrent readers exactly.
#[test]
fn insert_then_concurrent_queries() {
    let n = 64;
    let base = dataset(200, n, 0);
    let extra = dataset(100, n, 6000);
    let mut index = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(20)
        .sample_ratio(0.5)
        .build_sofa(&base, n)
        .expect("build");
    index.insert_all(&extra).expect("insert");
    let mut all = base.clone();
    all.extend_from_slice(&extra);
    let truth = FlatL2::new(&all, n, 1);
    std::thread::scope(|s| {
        for caller in 0..3 {
            let index = &index;
            let truth = &truth;
            s.spawn(move || {
                let queries = dataset(5, n, 3000 + caller * 17);
                for q in queries.chunks(n) {
                    assert_same(
                        &index.knn(q, 2).expect("query"),
                        &truth.knn_one(q, 2),
                        "post-insert",
                    );
                }
            });
        }
    });
}
