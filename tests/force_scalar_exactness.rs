//! Exactness under the forced-scalar kernel tier.
//!
//! This binary pins the dispatcher to the scalar tier before any kernel
//! runs (the in-process equivalent of `SOFA_FORCE_SCALAR=1`, which CI
//! also exercises across the whole suite) and replays the SOFA/MESSI
//! query workload against a tier-independent brute force. Together with
//! `crates/sofa-index/tests/exactness.rs` — the same assertions under
//! default dispatch — this proves the neighbor sets are identical between
//! `SOFA_FORCE_SCALAR=1` and the dispatched (AVX2/portable) path: both
//! must equal the same deterministic ground truth, row for row.
//!
//! Integration tests get their own process, so pinning the tier here
//! cannot leak into other suites.

use sofa::simd::{euclidean_sq_scalar, force_tier, KernelTier};
use sofa::{ExecPool, MessiIndex, Neighbor, ServeConfig, Server, SofaIndex};
use std::sync::Arc;

fn dataset(count: usize, n: usize, seed: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(count * n);
    for r in 0..count {
        for t in 0..n {
            let x = t as f32;
            let r = (r + seed) as f32;
            data.push(
                (x * 0.17 + r).sin()
                    + 0.8 * (x * (0.4 + (r % 11.0) * 0.11) + r * 0.3).cos()
                    + 0.3 * (x * 2.1 - r).sin(),
            );
        }
    }
    data
}

/// Brute-force k-NN over z-normalized copies using only the scalar
/// reference kernel — ground truth no dispatch decision can perturb.
fn brute_force_knn(data: &[f32], n: usize, query: &[f32], k: usize) -> Vec<Neighbor> {
    let mut q = query.to_vec();
    sofa::simd::znormalize(&mut q);
    let mut all: Vec<Neighbor> = data
        .chunks(n)
        .enumerate()
        .map(|(row, series)| {
            let mut s = series.to_vec();
            sofa::simd::znormalize(&mut s);
            Neighbor { row: row as u32, dist_sq: euclidean_sq_scalar(&q, &s) }
        })
        .collect();
    all.sort_by(|a, b| a.dist_sq.total_cmp(&b.dist_sq).then(a.row.cmp(&b.row)));
    all.truncate(k);
    all
}

/// One test function so the tier is pinned exactly once, before any
/// kernel call in this process.
#[test]
fn full_query_suite_is_exact_under_forced_scalar_tier() {
    force_tier(KernelTier::Scalar).expect("tier must be pinned before any kernel runs");
    assert_eq!(sofa::simd::active_tier(), KernelTier::Scalar);

    let n = 64;
    let data = dataset(500, n, 0);
    let pool = ExecPool::shared(2);
    let sofa = SofaIndex::builder()
        .pool(Arc::clone(&pool))
        .leaf_capacity(40)
        .sample_ratio(0.5)
        .build_sofa(&data, n)
        .expect("SOFA build");
    let messi = MessiIndex::builder()
        .pool(Arc::clone(&pool))
        .leaf_capacity(40)
        .build_messi(&data, n)
        .expect("MESSI build");
    assert_eq!(sofa.stats().kernel_tier, "scalar");

    let queries = dataset(8, n, 9000);
    for (qi, q) in queries.chunks(n).enumerate() {
        for k in [1usize, 5, 10] {
            let want = brute_force_knn(&data, n, q, k);
            for (name, got) in
                [("SOFA", sofa.knn(q, k).unwrap()), ("MESSI", messi.knn(q, k).unwrap())]
            {
                assert_eq!(got.len(), want.len(), "{name} query {qi} k={k}");
                for (g, w) in got.iter().zip(want.iter()) {
                    assert_eq!(g.row, w.row, "{name} query {qi} k={k}: {got:?} vs {want:?}");
                    let tol = 1e-3 * w.dist_sq.max(1.0);
                    assert!(
                        (g.dist_sq - w.dist_sq).abs() <= tol,
                        "{name} query {qi} k={k}: {g:?} vs {w:?}"
                    );
                }
            }
        }
    }

    // Batch answers must match single-query answers under this tier too.
    let batch = sofa.knn_batch(&queries, 5).expect("batch");
    for (qi, q) in queries.chunks(n).enumerate() {
        assert_eq!(batch[qi], sofa.knn(q, 5).unwrap(), "batch query {qi}");
    }

    // Coalesced serving stays exact under the forced tier: concurrent
    // answers through the sofa-serve micro-batching server, and a 2-way
    // sharded index, are bit-identical to the direct path.
    let sofa = Arc::new(sofa);
    let server = Server::new(Arc::clone(&sofa), ServeConfig::new().fill_target(3));
    std::thread::scope(|s| {
        for caller in 0..3usize {
            let server = &server;
            let sofa = &sofa;
            let queries = &queries;
            s.spawn(move || {
                for (qi, q) in queries.chunks(n).enumerate() {
                    let k = 1 + (caller + qi) % 5;
                    assert_eq!(
                        server.knn(q, k).expect("coalesced"),
                        sofa.knn(q, k).expect("direct"),
                        "caller {caller} query {qi} k={k}: coalesced != direct under scalar tier"
                    );
                }
            });
        }
    });
    drop(server);
    let Ok(sofa) = Arc::try_unwrap(sofa) else {
        panic!("server must have released its index handle");
    };
    let sharded = SofaIndex::builder()
        .pool(Arc::clone(&pool))
        .leaf_capacity(40)
        .sample_ratio(0.5)
        .build_sofa_sharded(&data, n, 2)
        .expect("sharded build");
    for (qi, q) in queries.chunks(n).enumerate() {
        assert_eq!(
            sharded.knn(q, 5).expect("sharded"),
            sofa.knn(q, 5).expect("direct"),
            "query {qi}: sharded != unsharded under scalar tier"
        );
    }

    // Online inserts (un-packed fallback refinement) stay exact, and
    // repacking restores the block path with identical answers.
    let mut sofa = sofa;
    let extra = dataset(60, n, 7777);
    sofa.insert_all(&extra).expect("insert");
    let mut all = data.clone();
    all.extend_from_slice(&extra);
    let probe = dataset(3, n, 31415);
    let before_repack: Vec<_> =
        probe.chunks(n).map(|q| sofa.knn(q, 5).expect("query after insert")).collect();
    for (q, got) in probe.chunks(n).zip(before_repack.iter()) {
        let want = brute_force_knn(&all, n, q, 5);
        for (g, w) in got.iter().zip(want.iter()) {
            assert_eq!(g.row, w.row, "post-insert exactness");
        }
    }
    sofa.repack_leaves();
    assert_eq!(sofa.stats().packed_leaves, sofa.stats().leaves);
    for (q, before) in probe.chunks(n).zip(before_repack.iter()) {
        assert_eq!(&sofa.knn(q, 5).expect("query after repack"), before, "repack changed answers");
    }
}
