//! Oracle suite for the generalized query funnel: range, filtered kNN
//! and max-inner-product must return **bit-identical** answers to a
//! brute-force oracle, on every path — direct calls, quant tier on and
//! off, through the `sofa-serve` coalescer in mixed-kind ticks, and
//! across shard merges. CI replays this binary under
//! `SOFA_FORCE_SCALAR=1`, so the predicate-masked and IP kernels are
//! proven exact on every dispatch tier.
//!
//! The oracle reproduces the refine phase's exact arithmetic: rows and
//! queries are z-normalized with the same dispatched kernel the build
//! uses, and distances come from `euclidean_sq_early_abandon` with an
//! infinite bound — the identical accumulation order the funnel uses
//! for any candidate it runs to completion, so comparisons are in bits,
//! not tolerances.

use sofa::simd::{dot, euclidean_sq_early_abandon, znormalize};
use sofa::summaries::ip_score;
use sofa::{
    IpNeighbor, Neighbor, QueryKind, RowFilter, ServeConfig, Server, ShardedSofaIndex, SofaIndex,
};
use std::sync::Arc;
use std::time::Duration;

/// A named predicate pattern: `(label, admit-fn)`.
type Pattern = (&'static str, Box<dyn Fn(usize) -> bool>);

fn dataset(count: usize, n: usize, seed: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(count * n);
    for r in 0..count {
        for t in 0..n {
            let x = t as f32;
            let rr = (r + seed) as f32;
            data.push((x * 0.19 + rr).sin() + 0.6 * (x * (0.31 + (rr % 11.0) * 0.17)).cos());
        }
    }
    data
}

/// Brute-force ground truth over the same z-normalized rows the index
/// stores, scored with the same dispatched kernels the funnel scores
/// with.
struct Oracle {
    rows: Vec<f32>,
    n: usize,
    count: usize,
}

impl Oracle {
    fn new(data: &[f32], n: usize) -> Self {
        let mut rows = data.to_vec();
        // The facade normalizes rows once (so the SFA model learns from
        // the normalized view) and `Index::build` normalizes again;
        // z-normalization is only *approximately* idempotent, so the
        // oracle must replay both passes to match the stored rows in
        // bits.
        for row in rows.chunks_mut(n) {
            znormalize(row);
            znormalize(row);
        }
        Oracle { rows, n, count: data.len() / n }
    }

    fn znorm_query(&self, query: &[f32]) -> Vec<f32> {
        let mut q = query.to_vec();
        znormalize(&mut q);
        q
    }

    /// Every admitted row's exact distance, sorted by `(dist_sq, row)` —
    /// the same total order `KnnSet` keeps.
    fn dists(&self, query: &[f32], admit: impl Fn(usize) -> bool) -> Vec<Neighbor> {
        let q = self.znorm_query(query);
        let mut out: Vec<Neighbor> = (0..self.count)
            .filter(|&r| admit(r))
            .map(|r| {
                let x = &self.rows[r * self.n..(r + 1) * self.n];
                let d = euclidean_sq_early_abandon(&q, x, f32::INFINITY);
                Neighbor { row: r as u32, dist_sq: d }
            })
            .collect();
        out.sort_unstable();
        out
    }

    fn knn(&self, query: &[f32], k: usize, admit: impl Fn(usize) -> bool) -> Vec<Neighbor> {
        let mut all = self.dists(query, admit);
        all.truncate(k);
        all
    }

    fn range(&self, query: &[f32], r_sq: f32) -> Vec<Neighbor> {
        let mut all = self.dists(query, |_| true);
        all.retain(|nb| nb.dist_sq <= r_sq);
        all
    }

    /// Top-k by inner product with the z-normalized query, ranked by the
    /// Parseval score `2n - q·x` (ascending), ties by row — the order
    /// the IP funnel ranks in. Returns the true dot products.
    fn top_ip(&self, query: &[f32], k: usize) -> Vec<IpNeighbor> {
        let q = self.znorm_query(query);
        let mut scored: Vec<(f32, u32, f32)> = (0..self.count)
            .map(|r| {
                let x = &self.rows[r * self.n..(r + 1) * self.n];
                let ip = dot(&q, x);
                (ip_score(self.n, ip), r as u32, ip)
            })
            .collect();
        scored.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        scored.truncate(k);
        scored.into_iter().map(|(_, row, ip)| IpNeighbor { row, ip }).collect()
    }
}

fn assert_bits_eq(got: &[Neighbor], want: &[Neighbor], tag: &str) {
    assert_eq!(got.len(), want.len(), "{tag}: cardinality");
    for (rank, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.row, w.row, "{tag} rank {rank}: row");
        assert_eq!(
            g.dist_sq.to_bits(),
            w.dist_sq.to_bits(),
            "{tag} rank {rank}: dist {} vs {}",
            g.dist_sq,
            w.dist_sq
        );
    }
}

fn build(data: &[f32], n: usize, quant: bool) -> SofaIndex {
    SofaIndex::builder()
        .threads(2)
        .leaf_capacity(24)
        .sample_ratio(0.4)
        .quant_refine(quant)
        .build_sofa(data, n)
        .expect("build")
}

/// Range queries return exactly the brute-force ball — including rows
/// tied bit-exactly at the radius — with the quant tier on and off.
#[test]
fn range_matches_brute_force_including_ties_at_radius() {
    let n = 64;
    let count = 900;
    let data = dataset(count, n, 3);
    let oracle = Oracle::new(&data, n);
    for quant in [false, true] {
        let index = build(&data, n, quant);
        for qi in 0..12 {
            let q = &data[(qi * 37 % count) * n..][..n];
            let all = oracle.dists(q, |_| true);
            // A radius sitting bit-exactly on a stored distance: the tied
            // row (and any bit-equal twins) must be returned.
            let tie = all[10].dist_sq;
            for (r_sq, tag) in [
                (tie, "tie"),
                (all[0].dist_sq * 0.5, "tiny"),
                (all[count - 1].dist_sq, "all"),
                (0.0, "zero"),
            ] {
                let got = index.range(q, r_sq).expect("range");
                assert_bits_eq(&got, &oracle.range(q, r_sq), &format!("quant={quant} q{qi} {tag}"));
            }
            let (hits, stats) = index.range_with_stats(q, tie).expect("range stats");
            assert_eq!(stats.range_hits, hits.len(), "range_hits counter");
            assert!(hits.iter().any(|nb| nb.dist_sq.to_bits() == tie.to_bits()), "tie row kept");
        }
    }
}

/// Filtered kNN is bit-identical to brute-force post-filtering at every
/// selectivity, and never returns a rejected row.
#[test]
fn filtered_knn_is_bit_identical_to_post_filtering() {
    let n = 64;
    let count = 900;
    let data = dataset(count, n, 7);
    let oracle = Oracle::new(&data, n);
    for quant in [false, true] {
        let index = build(&data, n, quant);
        let cases: Vec<Pattern> = vec![
            ("half", Box::new(|r| r % 2 == 0)),
            ("tenth", Box::new(|r| r % 10 == 3)),
            ("block", Box::new(move |r| r >= count / 2)),
            ("one", Box::new(|r| r == 421)),
        ];
        for (tag, admit) in &cases {
            let filter = RowFilter::from_fn(count, admit);
            for qi in 0..8 {
                let q = &data[(qi * 101 % count) * n..][..n];
                let got = index.knn_filtered(q, 10, &filter).expect("filtered");
                assert!(got.iter().all(|nb| admit(nb.row as usize)), "rejected row leaked");
                let want = oracle.knn(q, 10, admit);
                assert_bits_eq(&got, &want, &format!("quant={quant} q{qi} {tag}"));
            }
        }
        // The masked kernels actually mask: a selective predicate must
        // reject candidate lanes inside the funnel, not after it.
        let filter = RowFilter::from_fn(count, |r| r % 10 == 3);
        let (_, stats) = index.knn_filtered_with_stats(&data[..n], 10, &filter).expect("stats");
        assert!(stats.predicate_lanes_masked > 0, "predicate never masked a lane");
    }
}

/// Max-inner-product answers carry the true dot products and rank
/// exactly as the brute-force Parseval ordering.
#[test]
fn ip_queries_match_brute_force() {
    let n = 64;
    let count = 700;
    let data = dataset(count, n, 11);
    let oracle = Oracle::new(&data, n);
    for quant in [false, true] {
        let index = build(&data, n, quant);
        for qi in 0..10 {
            let q = &data[(qi * 67 % count) * n..][..n];
            let got = index.knn_ip(q, 5).expect("knn_ip");
            let want = oracle.top_ip(q, 5);
            assert_eq!(got.len(), want.len(), "quant={quant} q{qi}");
            for (rank, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                assert_eq!(g.row, w.row, "quant={quant} q{qi} rank {rank}");
                assert_eq!(g.ip.to_bits(), w.ip.to_bits(), "quant={quant} q{qi} rank {rank}: ip");
            }
            let best = index.nn_ip(q).expect("nn_ip");
            assert_eq!(best.row, want[0].row);
            assert_eq!(best.ip.to_bits(), want[0].ip.to_bits());
        }
    }
}

/// Mixed-kind ticks through the serve coalescer return exactly what the
/// direct per-query calls return, under concurrent submission.
#[test]
fn serve_mixed_ticks_agree_with_direct_calls() {
    let n = 64;
    let count = 600;
    let data = dataset(count, n, 19);
    let index = Arc::new(build(&data, n, true));
    let filter = Arc::new(RowFilter::from_fn(count, |r| r % 3 != 1));
    // A small fill target + wait window so concurrent submitters of
    // *different* kinds coalesce into shared ticks.
    let server = Server::new(
        Arc::clone(&index),
        ServeConfig::new().fill_target(4).max_wait(Duration::from_micros(200)),
    );
    std::thread::scope(|s| {
        for caller in 0..8 {
            let server = &server;
            let index = &index;
            let filter = &filter;
            let data = &data;
            s.spawn(move || {
                for i in 0..10 {
                    let q = &data[((caller * 31 + i * 7) % count) * n..][..n];
                    match (caller + i) % 4 {
                        0 => {
                            let got = server.knn(q, 5).expect("serve knn");
                            assert_bits_eq(&got, &index.knn(q, 5).expect("knn"), "mixed knn");
                        }
                        1 => {
                            let got = server
                                .knn_filtered(q, 5, Arc::clone(filter))
                                .expect("serve filtered");
                            let want = index.knn_filtered(q, 5, filter).expect("filtered");
                            assert_bits_eq(&got, &want, "mixed filtered");
                        }
                        2 => {
                            let r_sq = index.nn(q).expect("nn").dist_sq * 4.0;
                            let got = server.range(q, r_sq).expect("serve range");
                            assert_bits_eq(
                                &got,
                                &index.range(q, r_sq).expect("range"),
                                "mixed range",
                            );
                        }
                        _ => {
                            let got = server.knn_ip(q, 3).expect("serve ip");
                            let want = index.knn_ip(q, 3).expect("knn_ip");
                            for (g, w) in got.iter().zip(want.iter()) {
                                assert_eq!(g.row, w.row, "mixed ip row");
                                // The serve path recovers the dot from the
                                // funnel score (one f64 rounding).
                                assert!((g.ip - w.ip).abs() <= 1e-3 * w.ip.abs().max(1.0));
                            }
                        }
                    }
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.queries, 80);
}

mod adversarial {
    use super::*;
    use proptest::prelude::*;

    /// Arbitrary dataset whose row count is deliberately *not* aligned
    /// to the 8-lane kernel groups most of the time, so the last block
    /// group is padded and the predicate bitmap is shorter than the
    /// padded group.
    fn arb_dataset(n: usize) -> impl Strategy<Value = Vec<f32>> {
        (9usize..48).prop_flat_map(move |rows| proptest::collection::vec(-8.0f32..8.0, rows * n))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Hostile predicate shapes — an all-zero bitmap, a single
        /// surviving row, alternating lanes, and a bitmap whose tail
        /// group is padding — are bit-identical to brute-force
        /// post-filtering, with the quant tier on and off.
        #[test]
        fn hostile_filters_match_post_filtering(
            data in arb_dataset(32),
            survivor_sel in 0usize..1000,
            quant in proptest::bool::ANY,
        ) {
            let n = 32;
            let count = data.len() / n;
            let index = SofaIndex::builder()
                .word_len(8)
                .leaf_capacity(8)
                .threads(2)
                .sample_ratio(1.0)
                .quant_refine(quant)
                .build_sofa(&data, n)
                .expect("build");
            let oracle = Oracle::new(&data, n);
            let survivor = survivor_sel % count;
            let patterns: Vec<Pattern> = vec![
                ("all-zero", Box::new(|_| false)),
                ("single-survivor", Box::new(move |r| r == survivor)),
                ("alternating", Box::new(|r| r % 2 == 0)),
                // Rejecting the tail rows puts every admitted row next
                // to masked padding lanes in the final 8-wide group.
                ("tail-padding", Box::new(move |r| r < count.saturating_sub(count % 8 + 1))),
            ];
            let q = &data[survivor * n..][..n];
            for (tag, admit) in &patterns {
                let filter = RowFilter::from_fn(count, admit);
                let got = index.knn_filtered(q, 5, &filter).expect("filtered");
                prop_assert!(
                    got.iter().all(|nb| admit(nb.row as usize)),
                    "{tag}: rejected row leaked"
                );
                let want = oracle.knn(q, 5, admit);
                prop_assert_eq!(got.len(), want.len(), "{} cardinality", tag);
                for (g, w) in got.iter().zip(want.iter()) {
                    prop_assert_eq!(g.row, w.row, "{} row", tag);
                    prop_assert_eq!(g.dist_sq.to_bits(), w.dist_sq.to_bits(), "{} dist", tag);
                }
            }
        }

        /// A radius sitting bit-exactly on a stored row's distance keeps
        /// that row in the answer on arbitrary data.
        #[test]
        fn range_keeps_ties_exactly_at_the_radius(
            data in arb_dataset(32),
            tie_sel in 0usize..1000,
            quant in proptest::bool::ANY,
        ) {
            let n = 32;
            let count = data.len() / n;
            let index = SofaIndex::builder()
                .word_len(8)
                .leaf_capacity(8)
                .threads(2)
                .sample_ratio(1.0)
                .quant_refine(quant)
                .build_sofa(&data, n)
                .expect("build");
            let oracle = Oracle::new(&data, n);
            let q = &data[..n];
            let all = oracle.dists(q, |_| true);
            let tie = all[tie_sel % count];
            let got = index.range(q, tie.dist_sq).expect("range");
            let want = oracle.range(q, tie.dist_sq);
            prop_assert_eq!(got.len(), want.len(), "cardinality at r_sq={}", tie.dist_sq);
            for (g, w) in got.iter().zip(want.iter()) {
                prop_assert_eq!(g.row, w.row);
                prop_assert_eq!(g.dist_sq.to_bits(), w.dist_sq.to_bits());
            }
            prop_assert!(
                got.iter().any(|nb| nb.row == tie.row),
                "row {} tied exactly at the radius was dropped", tie.row
            );
        }
    }
}

/// Shard fan-out + merge is bit-identical to an unsharded build over
/// the same rows, for every query kind.
#[test]
fn sharded_queries_agree_with_unsharded() {
    let n = 64;
    let count = 800;
    let data = dataset(count, n, 23);
    let unsharded = build(&data, n, true);
    let sharded: ShardedSofaIndex = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(24)
        .sample_ratio(0.4)
        .quant_refine(true)
        .build_sofa_sharded(&data, n, 3)
        .expect("sharded build");
    let filter = Arc::new(RowFilter::from_fn(count, |r| r % 4 != 2));
    for qi in 0..10 {
        let q = &data[(qi * 83 % count) * n..][..n];
        let knn = sharded.query(q, QueryKind::Knn { k: 7 }).expect("sharded knn");
        assert_bits_eq(&knn, &unsharded.knn(q, 7).expect("knn"), "shard knn");

        let kf = QueryKind::KnnFiltered { k: 7, filter: Arc::clone(&filter) };
        let filt = sharded.query(q, kf).expect("sharded filtered");
        let want = unsharded.knn_filtered(q, 7, &filter).expect("filtered");
        assert_bits_eq(&filt, &want, "shard filtered");

        let r_sq = unsharded.nn(q).expect("nn").dist_sq * 6.0;
        let rng = sharded.query(q, QueryKind::Range { r_sq }).expect("sharded range");
        assert_bits_eq(&rng, &unsharded.range(q, r_sq).expect("range"), "shard range");

        let ip = sharded.query(q, QueryKind::Ip { k: 4 }).expect("sharded ip");
        let want_ip = unsharded.knn_ip(q, 4).expect("knn_ip");
        assert_eq!(ip.len(), want_ip.len(), "shard ip cardinality");
        for (g, w) in ip.iter().zip(want_ip.iter()) {
            assert_eq!(g.row, w.row, "shard ip row");
            // Sharded IP answers travel as funnel scores in `dist_sq`.
            assert_eq!(
                g.dist_sq.to_bits(),
                ip_score(n, w.ip).to_bits(),
                "shard ip score for row {}",
                g.row
            );
        }
    }
}
