//! Corruption-matrix tests: every damaged, truncated, torn, or foreign
//! snapshot must fail closed with a typed `IndexError::Snapshot*` —
//! never a panic, never a silently wrong index — and recovery by
//! rebuilding must always work afterwards.

use sofa::exec::failpoint::{self, FailAction};
use sofa::index::{SNAPSHOT_RENAME_FAILPOINT, SNAPSHOT_WRITE_FAILPOINT};
use sofa::{describe, IndexError, SofaIndex, SNAPSHOT_FORMAT_VERSION};
use std::sync::atomic::{AtomicUsize, Ordering};

fn dataset(count: usize, n: usize, seed: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(count * n);
    for r in 0..count {
        for t in 0..n {
            let x = t as f32;
            let r = (r + seed) as f32;
            data.push((x * 0.21 + r).sin() + 0.6 * (x * 1.3 - r * 0.2).cos());
        }
    }
    data
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sofa-corrupt-{}-{tag}-{id}.idx", std::process::id()))
}

fn build_small() -> (SofaIndex, Vec<f32>, usize) {
    let n = 64;
    let data = dataset(400, n, 0);
    let idx = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(40)
        .sample_ratio(0.5)
        .build_sofa(&data, n)
        .expect("build");
    (idx, data, n)
}

fn is_snapshot_error(err: &IndexError) -> bool {
    matches!(
        err,
        IndexError::SnapshotIo { .. }
            | IndexError::SnapshotFormat { .. }
            | IndexError::SnapshotCorrupt { .. }
            | IndexError::SnapshotLayout { .. }
    )
}

/// Truncating the file at (and one byte before) every section boundary
/// must fail closed — this walks the *real* section table, so every
/// section added in the future is covered automatically.
#[test]
fn truncation_at_every_section_boundary_fails_closed() {
    let (idx, _, _) = build_small();
    let path = tmp_path("trunc");
    idx.snapshot(&path).expect("snapshot");
    let bytes = std::fs::read(&path).expect("read");
    let info = describe(&path).expect("describe");
    assert!(info.sections.len() >= 8, "expected a full section table");

    let mut cuts: Vec<usize> = vec![0, 1, 8, 16, bytes.len() - 1];
    for s in &info.sections {
        let start = usize::try_from(s.offset).expect("offset fits");
        let end = usize::try_from(s.offset + s.len).expect("end fits");
        cuts.extend([start, start + 1, end.saturating_sub(1), end.min(bytes.len() - 1)]);
    }
    cuts.sort_unstable();
    cuts.dedup();

    let target = tmp_path("trunc-cut");
    for cut in cuts {
        std::fs::write(&target, &bytes[..cut]).expect("write truncated");
        match SofaIndex::open(&target) {
            Err(e) => assert!(is_snapshot_error(&e), "cut at {cut}: unexpected error {e:?}"),
            Ok(_) => panic!("truncation at byte {cut} of {} must not open", bytes.len()),
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&target).ok();
}

/// A bit flip inside every individual section must be caught by that
/// section's checksum (or a downstream validation) — including the
/// header/table region itself.
#[test]
fn bit_flip_in_every_section_fails_closed() {
    let (idx, _, _) = build_small();
    let path = tmp_path("flip");
    idx.snapshot(&path).expect("snapshot");
    let bytes = std::fs::read(&path).expect("read");
    let info = describe(&path).expect("describe");

    // One flip per section, at the middle byte, across all bit positions
    // of a probe mask; plus the header region.
    let mut probes: Vec<(usize, &str)> = vec![(9, "header"), (24, "header-table")];
    for s in &info.sections {
        if s.len == 0 {
            continue;
        }
        let mid = usize::try_from(s.offset + s.len / 2).expect("fits");
        probes.push((mid, s.name));
    }

    let target = tmp_path("flip-one");
    for (pos, section) in probes {
        for mask in [0x01u8, 0x80u8] {
            let mut damaged = bytes.clone();
            damaged[pos] ^= mask;
            std::fs::write(&target, &damaged).expect("write damaged");
            match SofaIndex::open(&target) {
                Err(e) => {
                    assert!(is_snapshot_error(&e), "{section} flip at {pos}: {e:?}");
                }
                // A flip in pure padding between sections is the only
                // position a checksum cannot see; the probe positions
                // above are all inside checksummed ranges, so opening
                // must fail.
                Ok(_) => panic!("bit flip in {section} (byte {pos}, mask {mask:#x}) must not open"),
            }
        }
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&target).ok();
}

#[test]
fn bad_magic_wrong_version_and_foreign_files_are_rejected() {
    let (idx, _, _) = build_small();
    let path = tmp_path("magic");
    idx.snapshot(&path).expect("snapshot");
    let good = std::fs::read(&path).expect("read");

    // Bad magic.
    let mut bad = good.clone();
    bad[0] ^= 0xFF;
    std::fs::write(&path, &bad).expect("write");
    match SofaIndex::open(&path) {
        Err(IndexError::SnapshotFormat { section, .. }) => assert_eq!(section, "header"),
        Err(e) => panic!("bad magic: wrong error {e:?}"),
        Ok(_) => panic!("bad magic must not open"),
    }

    // Wrong format version (header checksum is recomputed over the
    // edited header so only the version check can reject it).
    let mut versioned = good.clone();
    let v = (SNAPSHOT_FORMAT_VERSION + 1).to_ne_bytes();
    versioned[8..12].copy_from_slice(&v);
    std::fs::write(&path, &versioned).expect("write");
    match SofaIndex::open(&path) {
        Err(e) => assert!(is_snapshot_error(&e), "wrong version: {e:?}"),
        Ok(_) => panic!("future format version must not open"),
    }

    // Foreign file / zero-length file.
    for content in [&b"not a snapshot at all, sorry"[..], &b""[..]] {
        std::fs::write(&path, content).expect("write");
        match SofaIndex::open(&path) {
            Err(IndexError::SnapshotFormat { section, .. }) => assert_eq!(section, "header"),
            Err(e) => panic!("foreign file: wrong error {e:?}"),
            Ok(_) => panic!("foreign file must not open"),
        }
    }

    // Missing file.
    std::fs::remove_file(&path).ok();
    assert!(matches!(SofaIndex::open(&path), Err(IndexError::SnapshotIo { .. })));
}

/// A torn write (crash mid-snapshot, injected via failpoints) must
/// leave an existing snapshot untouched and no tmp litter; recovery by
/// rebuilding must still serve.
#[test]
fn torn_write_preserves_old_snapshot_and_rebuild_recovers() {
    let (idx, data, n) = build_small();
    let path = tmp_path("torn");
    idx.snapshot(&path).expect("first snapshot");
    let before = std::fs::read(&path).expect("read");
    let tmp = path.with_file_name(format!(
        "{}.tmp",
        path.file_name().and_then(|f| f.to_str()).expect("name")
    ));

    for (point, fires) in [
        (SNAPSHOT_WRITE_FAILPOINT, 1),
        (SNAPSHOT_WRITE_FAILPOINT, 4),
        (SNAPSHOT_RENAME_FAILPOINT, 1),
    ] {
        failpoint::arm(point, FailAction::Error, Some(fires));
        let err = idx.snapshot(&path).expect_err("injected crash must abort the snapshot");
        failpoint::clear(point);
        assert!(matches!(err, IndexError::SnapshotIo { .. }), "{point}: {err:?}");
        assert_eq!(std::fs::read(&path).expect("read"), before, "{point}: old snapshot damaged");
        assert!(!tmp.exists(), "{point}: tmp litter left behind");
        SofaIndex::open(&path).expect("old snapshot must still open");
    }

    // Recovery path: even with the snapshot gone entirely, rebuilding
    // from the raw data serves the same answers.
    std::fs::remove_file(&path).ok();
    let rebuilt = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(40)
        .sample_ratio(0.5)
        .build_sofa(&data, n)
        .expect("rebuild");
    for q in dataset(10, n, 999).chunks(n) {
        assert_eq!(rebuilt.nn(q).expect("query").row, idx.nn(q).expect("query").row);
    }
}

/// `describe` exposes the verified section table; hostile section
/// tables (overlapping or out-of-bounds entries) are rejected before
/// any section is interpreted.
#[test]
fn describe_round_trips_and_rejects_hostile_tables() {
    let (idx, _, _) = build_small();
    let path = tmp_path("table");
    idx.snapshot(&path).expect("snapshot");
    let info = describe(&path).expect("describe");
    assert_eq!(info.format_version, SNAPSHOT_FORMAT_VERSION);
    assert_eq!(info.file_len, std::fs::metadata(&path).expect("stat").len());
    for w in info.sections.windows(2) {
        assert!(w[0].offset + w[0].len <= w[1].offset, "sections must not overlap");
    }

    // Corrupt one table entry's length field: caught by the header
    // checksum before any offset is trusted.
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[24 + 12] ^= 0xFF;
    std::fs::write(&path, &bytes).expect("write");
    match describe(&path) {
        Err(e) => assert!(is_snapshot_error(&e), "{e:?}"),
        Ok(_) => panic!("hostile table must not describe"),
    }
    std::fs::remove_file(&path).ok();
}
