//! Fast workspace smoke test: a tiny SOFA and MESSI index must agree
//! exactly with the `FlatL2` brute-force baseline. This is the cheapest
//! end-to-end check of the whole stack (data -> summaries -> index ->
//! facade) and is meant to catch facade regressions in seconds.

use sofa::baselines::FlatL2;
use sofa::{MessiIndex, SofaIndex};

/// ~200 short series with mild cluster structure so pruning has work to do.
fn tiny_dataset(rows: usize, n: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(rows * n);
    for r in 0..rows {
        let cluster = (r % 8) as f32;
        for t in 0..n {
            let x = t as f32;
            // The small per-row phase term keeps every row unique (no ties).
            data.push(
                (x * (0.15 + 0.02 * cluster) + r as f32 * 0.013).sin()
                    + 0.3 * (x * 0.9 - cluster).cos(),
            );
        }
    }
    data
}

#[test]
fn sofa_and_messi_match_flat_l2_on_tiny_data() {
    let n = 32;
    let rows = 200;
    let data = tiny_dataset(rows, n);

    let sofa = SofaIndex::builder()
        .word_len(8)
        .leaf_capacity(16)
        .threads(2)
        .sample_ratio(1.0)
        .build_sofa(&data, n)
        .expect("sofa build");
    let messi = MessiIndex::builder()
        .word_len(8)
        .leaf_capacity(16)
        .threads(2)
        .build_messi(&data, n)
        .expect("messi build");
    let flat = FlatL2::new(&data, n, 2);

    // Queries: a handful of indexed rows (self-match must be exact zero)
    // plus perturbed rows (non-trivial nearest neighbor).
    for r in [0usize, 7, 63, 199] {
        let q = &data[r * n..(r + 1) * n];
        let s = sofa.nn(q).expect("sofa query");
        let m = messi.nn(q).expect("messi query");
        let f = flat.nn(q);
        assert!(s.dist_sq < 1e-6, "self-query should be exact: {s:?}");
        assert_eq!(s.row, r as u32, "sofa should find the row itself");
        assert_eq!(m.row, r as u32, "messi should find the row itself");
        assert_eq!(f.row, r as u32, "flat should find the row itself");
    }

    for r in [3usize, 42, 150] {
        let q: Vec<f32> = data[r * n..(r + 1) * n]
            .iter()
            .enumerate()
            .map(|(i, &x)| x + 0.05 * ((i * 7 % 5) as f32 - 2.0))
            .collect();
        let s = sofa.nn(&q).expect("sofa query");
        let m = messi.nn(&q).expect("messi query");
        let f = flat.nn(&q);
        let tol = 1e-4 * f.dist_sq.max(1.0);
        assert!((s.dist_sq - f.dist_sq).abs() < tol, "sofa {s:?} vs flat {f:?}");
        assert!((m.dist_sq - f.dist_sq).abs() < tol, "messi {m:?} vs flat {f:?}");

        // k-NN agreement, best-first.
        let sk = sofa.knn(&q, 5).expect("sofa knn");
        let fk = flat.knn_one(&q, 5);
        assert_eq!(sk.len(), 5);
        assert_eq!(fk.len(), 5);
        for (x, y) in sk.iter().zip(fk.iter()) {
            assert!(
                (x.dist_sq - y.dist_sq).abs() < 1e-4 * y.dist_sq.max(1.0),
                "knn drift: {x:?} vs {y:?}"
            );
        }
    }
}

#[test]
fn facade_rejects_malformed_input_cheaply() {
    assert!(SofaIndex::build(&[], 16).is_err());
    assert!(SofaIndex::build(&[0.0; 17], 16).is_err());
    let data = tiny_dataset(20, 16);
    let idx =
        SofaIndex::builder().word_len(8).sample_ratio(1.0).build_sofa(&data, 16).expect("build");
    assert!(idx.nn(&[0.0; 15]).is_err(), "query length mismatch must error");
}
