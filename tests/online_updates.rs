//! Online-insertion workflow: an index that grows after its initial build
//! must stay exact with respect to a scan over the same (grown) data.

use sofa::baselines::UcrScan;
use sofa::data::registry;
use sofa::{MessiIndex, SofaIndex};

#[test]
fn sofa_stays_exact_after_online_inserts() {
    let spec = registry().into_iter().find(|s| s.name == "STEAD").expect("registry");
    let dataset = spec.generate(600, 4);
    let n = dataset.series_len();
    let initial = 400 * n;

    let mut index = SofaIndex::builder()
        .leaf_capacity(40)
        .threads(2)
        .sample_ratio(0.25)
        .build_sofa(&dataset.data()[..initial], n)
        .expect("build");
    let first = index.insert_all(&dataset.data()[initial..]).expect("insert");
    assert_eq!(first, 400);
    assert_eq!(index.n_series(), 600);

    let scan = UcrScan::new(dataset.data(), n, 2);
    for qi in 0..dataset.n_queries() {
        let q = dataset.query(qi);
        let a = index.nn(q).expect("index query");
        let b = scan.nn(q);
        assert!(
            (a.dist_sq - b.dist_sq).abs() < 2e-3 * a.dist_sq.max(1.0),
            "query {qi}: index {a:?} vs scan {b:?}"
        );
        // k-NN agreement too.
        let ak = index.knn(q, 5).expect("index knn");
        let bk = scan.knn(q, 5);
        for (x, y) in ak.iter().zip(bk.iter()) {
            assert!((x.dist_sq - y.dist_sq).abs() < 2e-3 * x.dist_sq.max(1.0));
        }
    }
}

#[test]
fn messi_stays_exact_after_online_inserts() {
    let spec = registry().into_iter().find(|s| s.name == "OBS").expect("registry");
    let dataset = spec.generate(500, 3);
    let n = dataset.series_len();
    let initial = 250 * n;

    let mut index = MessiIndex::builder()
        .leaf_capacity(25)
        .threads(2)
        .build_messi(&dataset.data()[..initial], n)
        .expect("build");
    index.insert_all(&dataset.data()[initial..]).expect("insert");

    let scan = UcrScan::new(dataset.data(), n, 2);
    for qi in 0..dataset.n_queries() {
        let q = dataset.query(qi);
        let a = index.nn(q).expect("index query");
        let b = scan.nn(q);
        assert!((a.dist_sq - b.dist_sq).abs() < 2e-3 * a.dist_sq.max(1.0));
    }
}

#[test]
fn inserted_series_become_nearest_neighbors() {
    let spec = registry().into_iter().find(|s| s.name == "Iquique").expect("registry");
    let dataset = spec.generate(300, 2);
    let n = dataset.series_len();
    let mut index = SofaIndex::builder()
        .leaf_capacity(30)
        .threads(1)
        .sample_ratio(0.5)
        .build_sofa(dataset.data(), n)
        .expect("build");

    // Insert the queries themselves: each must then be its own 1-NN.
    index.insert_all(dataset.queries()).expect("insert");
    for qi in 0..dataset.n_queries() {
        let nn = index.nn(dataset.query(qi)).expect("query");
        assert!(nn.dist_sq < 1e-4, "query {qi} should find itself: {nn:?}");
        assert!(nn.row as usize >= 300, "should be an inserted row: {nn:?}");
    }
}
