//! Snapshot round-trip exactness: an index reopened from its snapshot
//! must answer 500 mixed queries bit-identically to the live index
//! that wrote it, and row-identically to a brute-force ground truth —
//! with the quantized refine tier on and off, and through the
//! micro-batching `Server` front-end.

use sofa::baselines::FlatL2;
use sofa::summaries::Summarization;
use sofa::{Builder, ExecPool, MessiIndex, ServeConfig, Server, SofaIndex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn dataset(count: usize, n: usize, seed: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(count * n);
    for r in 0..count {
        for t in 0..n {
            let x = t as f32;
            let r = (r + seed) as f32;
            data.push(
                (x * 0.17 + r).sin()
                    + 0.8 * (x * (0.4 + (r % 11.0) * 0.11) + r * 0.3).cos()
                    + 0.3 * (x * 2.1 - r).sin(),
            );
        }
    }
    data
}

fn tmp_path(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sofa-roundtrip-{}-{tag}-{id}.idx", std::process::id()))
}

/// 500 mixed queries: varying k, single-path and batch-path, verified
/// bit-for-bit against the live index and row-for-row against FlatL2.
fn run_query_suite(name: &str, live: &SofaIndex, opened: &SofaIndex, flat: &FlatL2, n: usize) {
    let queries = dataset(500, n, 40_000);
    for (qi, q) in queries.chunks(n).enumerate() {
        let k = 1 + qi % 10;
        let a = live.knn(q, k).expect("live query");
        let b = opened.knn(q, k).expect("opened query");
        assert_eq!(a.len(), b.len(), "{name} query {qi} k={k}");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.row, y.row, "{name} query {qi} k={k}");
            assert_eq!(
                x.dist_sq.to_bits(),
                y.dist_sq.to_bits(),
                "{name} query {qi} k={k}: dist bits differ"
            );
        }
        let truth = flat.knn_one(q, k);
        for (y, w) in b.iter().zip(truth.iter()) {
            assert_eq!(y.row, w.row, "{name} query {qi} k={k}: snapshot vs FlatL2");
        }
    }
}

#[test]
fn sofa_round_trip_500_queries_bit_identical() {
    let n = 64;
    let data = dataset(900, n, 0);
    let pool = ExecPool::shared(2);
    let live = Builder::default()
        .pool(Arc::clone(&pool))
        .leaf_capacity(60)
        .sample_ratio(0.5)
        .build_sofa(&data, n)
        .expect("build");
    let flat = FlatL2::new(&data, n, 2);

    let path = tmp_path("sofa");
    let bytes = live.snapshot(&path).expect("snapshot");
    assert!(bytes > 0);
    let opened = Builder::default().pool(Arc::clone(&pool)).open_sofa(&path).expect("open");
    assert!(opened.is_mapped() && !live.is_mapped());
    assert_eq!(opened.n_series(), live.n_series());
    assert_eq!(opened.sfa().name(), live.sfa().name());

    run_query_suite("sofa", &live, &opened, &flat, n);

    // The quantized refine tier must survive the round trip: identical
    // answers whether it is consulted or bypassed.
    assert_eq!(opened.quant_refine_enabled(), live.quant_refine_enabled());
    opened.set_quant_refine(false);
    live.set_quant_refine(false);
    run_query_suite("sofa/quant-off", &live, &opened, &flat, n);
    opened.set_quant_refine(true);
    live.set_quant_refine(true);

    // Batch path agrees with the single-query path on the mapped index.
    let queries = dataset(16, n, 55_000);
    let batch = opened.knn_batch(&queries, 5).expect("batch");
    for (qi, q) in queries.chunks(n).enumerate() {
        assert_eq!(batch[qi], live.knn(q, 5).expect("live"), "batch query {qi}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn messi_round_trip_matches_live_and_flat() {
    let n = 64;
    let data = dataset(700, n, 3);
    let live =
        MessiIndex::builder().threads(2).leaf_capacity(50).build_messi(&data, n).expect("build");
    let flat = FlatL2::new(&data, n, 2);

    let path = tmp_path("messi");
    live.snapshot(&path).expect("snapshot");
    let opened = MessiIndex::open(&path).expect("open");
    assert!(opened.is_mapped());

    let queries = dataset(100, n, 91_000);
    for (qi, q) in queries.chunks(n).enumerate() {
        let k = 1 + qi % 7;
        let a = live.knn(q, k).expect("live");
        let b = opened.knn(q, k).expect("opened");
        assert_eq!(a, b, "query {qi} k={k}");
        for (y, w) in b.iter().zip(flat.knn_one(q, k).iter()) {
            assert_eq!(y.row, w.row, "query {qi} k={k}: snapshot vs FlatL2");
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn quant_disabled_build_round_trips_without_grid() {
    let n = 64;
    let data = dataset(400, n, 7);
    let live = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(40)
        .sample_ratio(0.5)
        .quant_refine(false)
        .build_sofa(&data, n)
        .expect("build");

    let path = tmp_path("noquant");
    live.snapshot(&path).expect("snapshot");
    let opened = SofaIndex::open(&path).expect("open");
    assert!(!opened.quant_refine_enabled());

    let flat = FlatL2::new(&data, n, 2);
    let queries = dataset(60, n, 123);
    for (qi, q) in queries.chunks(n).enumerate() {
        let a = live.knn(q, 3).expect("live");
        let b = opened.knn(q, 3).expect("opened");
        assert_eq!(a, b, "query {qi}");
        assert_eq!(b[0].row, flat.nn(q).row, "query {qi} vs FlatL2");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn server_over_reopened_snapshot_is_bit_identical() {
    let n = 64;
    let data = dataset(600, n, 11);
    let live = Arc::new(
        SofaIndex::builder()
            .threads(2)
            .leaf_capacity(50)
            .sample_ratio(0.5)
            .build_sofa(&data, n)
            .expect("build"),
    );
    let path = tmp_path("server");
    live.snapshot(&path).expect("snapshot");
    let opened = Arc::new(SofaIndex::open(&path).expect("open"));

    let server = Server::new(Arc::clone(&opened), ServeConfig::new().fill_target(3));
    let queries = dataset(18, n, 2222);
    std::thread::scope(|s| {
        for caller in 0..3usize {
            let server = &server;
            let live = &live;
            let queries = &queries;
            s.spawn(move || {
                for (qi, q) in queries.chunks(n).enumerate() {
                    let k = 1 + (caller + qi) % 5;
                    assert_eq!(
                        server.knn(q, k).expect("coalesced"),
                        live.knn(q, k).expect("live"),
                        "caller {caller} query {qi} k={k}"
                    );
                }
            });
        }
    });
    std::fs::remove_file(&path).ok();
}

#[test]
fn reopened_index_keeps_growing_and_snapshots_again() {
    let n = 64;
    let data = dataset(300, n, 21);
    let live = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(40)
        .sample_ratio(0.5)
        .build_sofa(&data, n)
        .expect("build");
    let path = tmp_path("regrow");
    live.snapshot(&path).expect("snapshot");

    let mut opened = SofaIndex::open(&path).expect("open");
    let extra = dataset(50, n, 40);
    opened.insert_all(&extra).expect("insert");
    assert!(!opened.is_mapped(), "inserts must promote mapped arenas to owned");
    opened.repack_leaves();

    // The grown index snapshots and reopens, answering over all rows.
    let path2 = tmp_path("regrow2");
    opened.snapshot(&path2).expect("second snapshot");
    let second = SofaIndex::open(&path2).expect("second open");
    assert_eq!(second.n_series(), 350);
    let mut all = Vec::new();
    for chunk in data.chunks(n).chain(extra.chunks(n)) {
        all.extend_from_slice(chunk);
    }
    let flat = FlatL2::new(&all, n, 2);
    for q in dataset(20, n, 31_337).chunks(n) {
        assert_eq!(second.nn(q).expect("query").row, flat.nn(q).row);
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&path2).ok();
}
