//! End-to-end workflow tests exercising the public facade the way the
//! examples and the benchmark harness do.

use sofa::data::{registry, ucr_like_archive, Dataset};
use sofa::summaries::{tlb_of, ISax, SaxConfig, Sfa, SfaConfig};
use sofa::{BinningStrategy, CoefficientSelection, MessiIndex, SofaIndex};

#[test]
fn full_workflow_on_registry_dataset() {
    let spec = registry().into_iter().find(|s| s.name == "STEAD").expect("registry");
    let dataset = spec.generate(800, 4);
    let n = dataset.series_len();

    let index = SofaIndex::builder()
        .leaf_capacity(100)
        .threads(2)
        .sample_ratio(0.2)
        .build_sofa(dataset.data(), n)
        .expect("build");

    // Structure sanity (Figure 8 quantities).
    let stats = index.stats();
    assert_eq!(stats.n_series, 800);
    assert!(stats.subtrees >= 1);
    assert!(stats.avg_leaf_size > 0.0);

    // Query + work counters.
    let (neighbors, qstats) = index.knn_with_stats(dataset.query(0), 10).expect("query");
    assert_eq!(neighbors.len(), 10);
    assert!(qstats.series_refined <= qstats.series_lbd_checked);

    // Approximate answer never beats the exact one.
    let approx = index.approximate_nn(dataset.query(0)).expect("approx");
    assert!(approx.dist_sq >= neighbors[0].dist_sq - 1e-5);
}

#[test]
fn all_sfa_variants_build_and_answer() {
    let spec = registry().into_iter().find(|s| s.name == "OBS").expect("registry");
    let dataset = spec.generate(300, 2);
    let n = dataset.series_len();
    for binning in [BinningStrategy::EquiWidth, BinningStrategy::EquiDepth] {
        for selection in [CoefficientSelection::HighestVariance, CoefficientSelection::FirstL] {
            let index = SofaIndex::builder()
                .binning(binning)
                .selection(selection)
                .leaf_capacity(50)
                .threads(1)
                .sample_ratio(0.5)
                .build_sofa(dataset.data(), n)
                .expect("build");
            let nn = index.nn(dataset.query(0)).expect("query");
            assert!(nn.dist_sq.is_finite());
        }
    }
}

#[test]
fn tlb_pipeline_over_ucr_archive() {
    // The §V-E ablation end-to-end on a small slice: learn on train,
    // query with test, TLB must favor SFA EW+VAR over iSAX on average.
    let archive = ucr_like_archive(64, 60, 5);
    let slice = &archive[..8];
    let word_len = 16;
    let alpha = 16;
    let mut sfa_total = 0.0;
    let mut sax_total = 0.0;
    for ds in slice {
        let sfa = Sfa::learn(
            &ds.train,
            64,
            &SfaConfig { word_len, alphabet: alpha, sample_ratio: 1.0, ..Default::default() },
        );
        let sax = ISax::new(64, &SaxConfig { word_len, alphabet: alpha });
        sfa_total += tlb_of(&sfa, &ds.train, &ds.test, 40).mean_tlb;
        sax_total += tlb_of(&sax, &ds.train, &ds.test, 40).mean_tlb;
    }
    assert!(
        sfa_total > sax_total,
        "mean TLB: SFA {} should beat iSAX {}",
        sfa_total / 8.0,
        sax_total / 8.0
    );
}

#[test]
fn dataset_container_roundtrip() {
    let spec = &registry()[0];
    let mut dataset = spec.generate(50, 2);
    dataset.znormalize();
    for i in 0..dataset.n_series() {
        let row = dataset.series(i);
        let mean: f32 = row.iter().sum::<f32>() / row.len() as f32;
        assert!(mean.abs() < 1e-4);
    }
    let truncated = dataset.truncated(10);
    assert_eq!(truncated.n_series(), 10);
    assert_eq!(truncated.n_queries(), 2);
}

#[test]
fn messi_builder_and_isax_access() {
    let dataset = Dataset::new(
        "inline".into(),
        64,
        (0..300 * 64).map(|i| ((i % 64) as f32 * 0.2 + (i / 64) as f32).sin()).collect(),
        (0..64).map(|t| (t as f32 * 0.2).sin()).collect(),
    );
    let messi = MessiIndex::builder()
        .word_len(8)
        .leaf_capacity(30)
        .threads(2)
        .build_messi(dataset.data(), 64)
        .expect("build");
    assert_eq!(messi.isax().paa().segments(), 8);
    let nn = messi.nn(dataset.query(0)).expect("query");
    assert!(nn.dist_sq >= 0.0);
}

#[test]
fn index_handles_tiny_and_degenerate_datasets() {
    // One series.
    let one: Vec<f32> = (0..64).map(|t| (t as f32 * 0.3).sin()).collect();
    let idx = SofaIndex::builder().sample_ratio(1.0).build_sofa(&one, 64).expect("build");
    let nn = idx.nn(&one).expect("query");
    assert_eq!(nn.row, 0);

    // All-constant series (z-normalize to zeros).
    let flat = vec![5.0f32; 10 * 64];
    let idx = SofaIndex::builder().sample_ratio(1.0).build_sofa(&flat, 64).expect("build");
    let nn = idx.nn(&flat[..64]).expect("query");
    assert_eq!(nn.dist_sq, 0.0);
}
