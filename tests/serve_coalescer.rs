//! Integration suite for the `sofa-serve` micro-batching front-end.
//!
//! The contract under test: answers that travel through the coalescer —
//! whatever tick they land in, however contended the queue — are
//! **bit-identical** to direct per-query `knn` calls and match the
//! `FlatL2` ground truth; a sharded index is bit-identical to an
//! unsharded one over the same rows; shutdown never hangs or drops a
//! submitter; and the `queries_served` counter advances exactly once
//! per logical query on every path (direct, batch, coalesced, sharded).
//!
//! Submitter threads are simulated with `std::thread::scope` *here
//! only* — the library crates spawn nothing beyond their own pools and
//! the server's single collector thread.

use sofa::baselines::FlatL2;
use sofa::{Neighbor, ServeConfig, ServeError, Server, SofaIndex};
use std::sync::Arc;
use std::time::Duration;

fn dataset(count: usize, n: usize, seed: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(count * n);
    for r in 0..count {
        for t in 0..n {
            let x = t as f32;
            let r = (r + seed) as f32;
            data.push((x * 0.21 + r).sin() + 0.7 * (x * (0.3 + (r % 9.0) * 0.13)).cos());
        }
    }
    data
}

fn build(data: &[f32], n: usize, threads: usize) -> SofaIndex {
    SofaIndex::builder()
        .threads(threads)
        .leaf_capacity(32)
        .sample_ratio(0.3)
        .build_sofa(data, n)
        .expect("build")
}

/// Concurrent submissions through the coalescer return exactly what the
/// direct path returns (bitwise), and the direct path matches the flat
/// brute force.
#[test]
fn coalesced_answers_are_bit_identical_and_exact() {
    let n = 64;
    let count = 600;
    let data = dataset(count, n, 0);
    let index = Arc::new(build(&data, n, 2));
    let truth = FlatL2::new(&data, n, 1);
    let server = Server::new(
        Arc::clone(&index),
        ServeConfig::new().fill_target(4).max_wait(Duration::from_micros(150)),
    );

    let n_callers = 6;
    let per_caller = 12;
    std::thread::scope(|s| {
        for caller in 0..n_callers {
            let server = &server;
            let index = &index;
            let truth = &truth;
            let data = &data;
            s.spawn(move || {
                for j in 0..per_caller {
                    let row = (caller * 131 + j * 17) % count;
                    let q: Vec<f32> = data[row * n..(row + 1) * n]
                        .iter()
                        .map(|&x| x * (1.0 + 0.001 * ((j % 5) as f32 - 2.0)))
                        .collect();
                    let via: Vec<Neighbor> = server.knn(&q, 5).expect("coalesced");
                    let direct = index.knn(&q, 5).expect("direct");
                    assert_eq!(via, direct, "caller {caller} query {j}: coalesced != direct");
                    let t = truth.nn(&q).dist_sq;
                    assert!(
                        (via[0].dist_sq - t).abs() <= 1e-3 * t.max(1.0),
                        "caller {caller} query {j}: {} vs flat {t}",
                        via[0].dist_sq
                    );
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.queries, (n_callers * per_caller) as u64);
    assert!(stats.ticks <= stats.queries, "ticks cannot exceed queries");
    assert!(stats.max_tick_fill >= 1);
}

/// One logical query advances `queries_served` exactly once, whether it
/// travels the direct path, a `knn_batch` lane, or a coalesced tick.
#[test]
fn queries_served_counts_once_per_query_on_every_path() {
    let n = 48;
    let data = dataset(300, n, 3);
    let index = Arc::new(build(&data, n, 2));
    let before = index.stats().queries_served;

    for row in 0..3 {
        index.nn(&data[row * n..(row + 1) * n]).expect("direct");
    }
    index.knn_batch(&data[..4 * n], 2).expect("batch");
    let server = Server::new(Arc::clone(&index), ServeConfig::default());
    for row in 0..5 {
        server.knn(&data[row * n..(row + 1) * n], 1).expect("coalesced");
    }
    drop(server);

    assert_eq!(
        index.stats().queries_served - before,
        3 + 4 + 5,
        "each path must count one queries_served per logical query"
    );
}

/// Shutdown with tickets still pending: every submitter gets either its
/// exact answer or `ServeError::ShutDown` — never a hang — and new
/// submissions after shutdown are rejected.
#[test]
fn shutdown_answers_or_aborts_pending_submitters() {
    let n = 32;
    let count = 200;
    let data = dataset(count, n, 7);
    let index = Arc::new(build(&data, n, 1));
    // A large window and an unreachable fill target force tickets to sit
    // in the queue until shutdown sweeps them.
    let server = Server::new(
        Arc::clone(&index),
        ServeConfig::new().fill_target(64).max_wait(Duration::from_millis(50)),
    );

    std::thread::scope(|s| {
        for caller in 0..4 {
            let server = &server;
            let index = &index;
            let data = &data;
            s.spawn(move || {
                for j in 0..8 {
                    let row = (caller * 37 + j * 11) % count;
                    let q = &data[row * n..(row + 1) * n];
                    match server.knn(q, 3) {
                        Ok(via) => {
                            assert_eq!(via, index.knn(q, 3).expect("direct"));
                        }
                        Err(ServeError::ShutDown) => return,
                        Err(other) => panic!("unexpected error: {other}"),
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(2));
        server.shutdown();
    });
    assert!(matches!(server.knn(&data[..n], 1), Err(ServeError::ShutDown)));
}

/// More submitters than queue slots: backpressure blocks them instead of
/// growing memory, nothing is lost, and every answer stays exact.
#[test]
fn oversubscribed_queue_applies_backpressure_without_losing_answers() {
    let n = 32;
    let count = 240;
    let data = dataset(count, n, 11);
    let index = Arc::new(build(&data, n, 1));
    let server =
        Server::new(Arc::clone(&index), ServeConfig::new().fill_target(2).queue_capacity(2));

    let n_callers = 12;
    let per_caller = 6;
    std::thread::scope(|s| {
        for caller in 0..n_callers {
            let server = &server;
            let index = &index;
            let data = &data;
            s.spawn(move || {
                for j in 0..per_caller {
                    let row = (caller * 53 + j * 19) % count;
                    let q = &data[row * n..(row + 1) * n];
                    let via = server.knn(q, 2).expect("coalesced");
                    assert_eq!(via, index.knn(q, 2).expect("direct"));
                }
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.queries, (n_callers * per_caller) as u64);
    assert!(
        stats.max_queue_depth <= 2,
        "queue depth {} exceeded its capacity bound",
        stats.max_queue_depth
    );
}

/// Facade-built sharded indexes are bit-identical to the unsharded
/// index over the same rows — per-query, and served through the
/// coalescer — and the sharded logical query counter matches.
#[test]
fn sharded_index_matches_unsharded_bitwise() {
    let n = 64;
    let count = 500;
    let data = dataset(count, n, 5);
    let whole = build(&data, n, 2);
    for n_shards in [2, 3] {
        let sharded = SofaIndex::builder()
            .threads(2)
            .leaf_capacity(32)
            .sample_ratio(0.3)
            .build_sofa_sharded(&data, n, n_shards)
            .expect("sharded build");
        assert_eq!(sharded.n_shards(), n_shards);
        assert_eq!(sharded.n_series(), count);
        for qi in (0..count).step_by(41) {
            let q = &data[qi * n..(qi + 1) * n];
            for k in [1, 5] {
                assert_eq!(
                    sharded.knn(q, k).expect("sharded"),
                    whole.knn(q, k).expect("whole"),
                    "row {qi}, k {k}, {n_shards} shards"
                );
            }
        }
    }

    // Served through the coalescer, the sharded index still answers
    // bit-identically, and one logical query counts once.
    let sharded = Arc::new(
        SofaIndex::builder()
            .threads(2)
            .leaf_capacity(32)
            .sample_ratio(0.3)
            .build_sofa_sharded(&data, n, 2)
            .expect("sharded build"),
    );
    let before = sharded.queries_served();
    let server = Server::new(Arc::clone(&sharded), ServeConfig::default());
    std::thread::scope(|s| {
        for caller in 0..4 {
            let server = &server;
            let whole = &whole;
            let data = &data;
            s.spawn(move || {
                for j in 0..6 {
                    let row = (caller * 101 + j * 29) % count;
                    let q = &data[row * n..(row + 1) * n];
                    let via = server.knn(q, 4).expect("coalesced");
                    assert_eq!(via, whole.knn(q, 4).expect("whole"));
                }
            });
        }
    });
    drop(server);
    assert_eq!(sharded.queries_served() - before, 24);
}

/// Degenerate shard counts: asking for more shards than rows clamps,
/// and a one-shard "sharded" index equals the plain index.
#[test]
fn shard_count_edge_cases() {
    let n = 32;
    let data = dataset(40, n, 13);
    let whole = build(&data, n, 1);
    let one = SofaIndex::builder()
        .threads(1)
        .leaf_capacity(32)
        .sample_ratio(0.3)
        .build_sofa_sharded(&data, n, 1)
        .expect("1-shard build");
    let many = SofaIndex::builder()
        .threads(1)
        .leaf_capacity(32)
        .sample_ratio(0.3)
        .build_sofa_sharded(&data, n, 1000)
        .expect("clamped build");
    assert!(many.n_shards() <= 40, "shards must clamp to the row count");
    for qi in 0..8 {
        let q = &data[qi * n..(qi + 1) * n];
        let want = whole.knn(q, 3).expect("whole");
        assert_eq!(one.knn(q, 3).expect("one"), want);
        assert_eq!(many.knn(q, 3).expect("many"), want);
    }
}

/// Satellite stress for the shutdown/submit race: many short server
/// lifetimes, each with submitters racing a shutdown fired at a sliding
/// offset (before, during and after their submissions). Every ticket
/// must resolve — an exact answer or an explicit `ShutDown` — with no
/// hang (the scope returning is the proof) and balanced books: the
/// server's `queries` audit equals the answers the submitters observed.
#[test]
fn shutdown_submit_race_resolves_every_ticket() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let n = 32;
    let count = 200;
    let data = dataset(count, n, 21);
    let index = Arc::new(build(&data, n, 2));
    for cycle in 0..20usize {
        let server = Server::new(
            Arc::clone(&index),
            ServeConfig::new().fill_target(4).max_wait(Duration::from_micros(100)),
        );
        let answered = AtomicU64::new(0);
        std::thread::scope(|s| {
            for caller in 0..6usize {
                let server = &server;
                let index = &index;
                let data = &data;
                let answered = &answered;
                s.spawn(move || {
                    for j in 0..10usize {
                        let row = (caller * 31 + j * 7 + cycle) % count;
                        let q = &data[row * n..(row + 1) * n];
                        match server.knn(q, 2) {
                            Ok(via) => {
                                assert_eq!(via, index.knn(q, 2).expect("direct"));
                                answered.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::ShutDown) => return,
                            Err(other) => panic!("unexpected error: {other}"),
                        }
                    }
                });
            }
            // Slide the shutdown across the submission window so some
            // cycles race the very first enqueue and some the last.
            std::thread::sleep(Duration::from_micros((cycle * 120) as u64));
            server.shutdown();
        });
        let stats = server.stats();
        assert_eq!(
            stats.queries,
            answered.load(Ordering::Relaxed),
            "cycle {cycle}: audit must equal observed answers"
        );
        assert!(matches!(server.knn(&data[..n], 1), Err(ServeError::ShutDown)));
        drop(server);
    }
}
