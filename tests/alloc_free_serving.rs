//! Zero-allocation steady-state serving, asserted by a counting allocator.
//!
//! The collect-batching PR's claim is not "fewer" allocations but **zero**
//! on the warm serial `knn` path: every per-query buffer lives in a
//! pooled `QueryScratch`, the query context borrows an index-owned
//! `QueryEnv`, and results drain into a caller-owned buffer via
//! `knn_into`. This binary installs a global allocator that counts every
//! `alloc`/`realloc` and proves the claim: after a warm-up pass over the
//! query set, replaying the same queries performs not a single heap
//! allocation.
//!
//! Two configurations are proven inside the single `#[test]` (a second
//! test function would run concurrently and pollute the counter): the
//! serial path (`threads(1)`) and the pool-parallel single-query path
//! (`threads(2)`), whose two per-query `broadcast`s used to box one task
//! per lane — the hole the pre-sized shared-task slots in `sofa-exec`
//! closed.

use sofa::{Neighbor, SofaIndex};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// `System`, plus a relaxed counter of allocation events (alloc +
/// realloc; deallocations are free of new memory and not counted).
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation unchanged to `System`; the counter is
// a relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn dataset(count: usize, n: usize, seed: usize) -> Vec<f32> {
    let mut data = Vec::with_capacity(count * n);
    for r in 0..count {
        for t in 0..n {
            let x = t as f32;
            let r = (r + seed) as f32;
            data.push((x * 0.19 + r).sin() + 0.6 * (x * (0.5 + (r % 7.0) * 0.13)).cos());
        }
    }
    data
}

/// Runs the warm-up + measured replay over `sofa`, returning the number
/// of allocation events the measured pass performed.
fn measure_warm_replay(sofa: &SofaIndex, queries: &[f32], n: usize) -> u64 {
    let mut out: Vec<Neighbor> = Vec::new();

    // Warm-up: create the pooled scratch, size every buffer (queues,
    // heaps, DFT spectrum, word/context buffers, broadcast scope cache)
    // to this query set, and resolve the kernel-dispatch OnceLock.
    for _ in 0..2 {
        for (qi, q) in queries.chunks(n).enumerate() {
            let k = [1usize, 5, 10][qi % 3];
            sofa.knn_into(q, k, &mut out).expect("warmup query");
        }
    }

    // Measured pass: the same queries (so collected-leaf counts and heap
    // sizes are reproduced exactly) must allocate nothing at all.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..4 {
        for (qi, q) in queries.chunks(n).enumerate() {
            let k = [1usize, 5, 10][qi % 3];
            sofa.knn_into(q, k, &mut out).expect("measured query");
            assert!(!out.is_empty());
        }
    }
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_knn_performs_zero_heap_allocations() {
    let n = 96;
    let data = dataset(600, n, 0);
    let queries = dataset(24, n, 9000);

    // threads(1): the serial path — the per-query algorithm and nothing
    // else.
    let serial = SofaIndex::builder()
        .threads(1)
        .leaf_capacity(40)
        .sample_ratio(0.2)
        .build_sofa(&data, n)
        .expect("build");
    let allocations = measure_warm_replay(&serial, &queries, n);
    assert_eq!(
        allocations, 0,
        "steady-state serial knn_into path allocated {allocations} time(s) across 96 queries"
    );

    // threads(2): the pool-parallel single-query path — collect and
    // refine each broadcast over the pool. The broadcasts carry borrowed
    // shared tasks and a cached scope state, so this path must be just as
    // allocation-free as the serial one.
    let parallel = SofaIndex::builder()
        .threads(2)
        .leaf_capacity(40)
        .sample_ratio(0.2)
        .build_sofa(&data, n)
        .expect("build");
    assert!(parallel.pool().threads() > 1, "test must exercise the broadcast path");
    let allocations = measure_warm_replay(&parallel, &queries, n);
    assert_eq!(
        allocations, 0,
        "steady-state pool-parallel knn_into path allocated {allocations} time(s) \
         across 96 queries"
    );
}
